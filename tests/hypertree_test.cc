// Tests for hypertree decompositions (Section 6's discussion of
// Gottlob-Leone-Scarcello): validity, the width-1 = acyclicity
// correspondence, the cover-based upper bound, and solving CSPs along a
// decomposition.

#include <gtest/gtest.h>

#include <algorithm>

#include "boolean/hell_nesetril.h"
#include "treewidth/heuristics.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(MinimumEdgeCover, ExactCovers) {
  Hypergraph h{{{0, 1, 2}, {2, 3}, {3, 4}, {0, 4}}};
  auto one = MinimumEdgeCover(h, {0, 1});
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->size(), 1u);
  auto two = MinimumEdgeCover(h, {1, 3});
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->size(), 2u);
  EXPECT_FALSE(MinimumEdgeCover(h, {9}).has_value());
  auto empty = MinimumEdgeCover(h, {});
  ASSERT_TRUE(empty.has_value());
  EXPECT_TRUE(empty->empty());
}

TEST(Hypertree, AcyclicHypergraphsHaveWidthOne) {
  // Chain and star schemas: alpha-acyclic, so the join-forest route
  // yields width 1.
  Hypergraph chain{{{0, 1}, {1, 2}, {2, 3}}};
  auto w = HypertreeWidthUpperBound(chain);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1);
  Hypergraph star{{{0, 1}, {0, 2}, {0, 3}}};
  w = HypertreeWidthUpperBound(star);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 1);
}

TEST(Hypertree, TriangleNeedsWidthTwo) {
  Hypergraph triangle{{{0, 1}, {1, 2}, {0, 2}}};
  auto w = HypertreeWidthUpperBound(triangle);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, 2);  // any two edges cover the bag {0,1,2}
}

TEST(Hypertree, ConstructedDecompositionsAreValid) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    // Random hypergraph: mixed binary/ternary edges.
    Hypergraph h;
    int vertices = 6;
    int edges = rng.UniformInt(3, 6);
    for (int e = 0; e < edges; ++e) {
      int size = rng.UniformInt(2, 3);
      h.edges.push_back(rng.SampleDistinct(vertices, size));
    }
    auto forest = BuildJoinForest(h);
    std::optional<HypertreeDecomposition> htd;
    if (forest.has_value()) {
      htd = HypertreeFromTreeDecomposition(
          h, JoinForestToTreeDecomposition(h, *forest));
    } else {
      Graph primal(vertices);
      for (const auto& edge : h.edges) {
        for (std::size_t i = 0; i < edge.size(); ++i) {
          for (std::size_t j = i + 1; j < edge.size(); ++j) {
            primal.AddEdge(edge[i], edge[j]);
          }
        }
      }
      htd = HypertreeFromTreeDecomposition(h, MinFillDecomposition(primal));
    }
    ASSERT_TRUE(htd.has_value()) << trial;
    // Normalize edge sortedness as BuildJoinForest does.
    Hypergraph sorted = h;
    for (auto& edge : sorted.edges) std::sort(edge.begin(), edge.end());
    EXPECT_TRUE(IsValidGeneralizedHypertree(sorted, *htd)) << trial;
  }
}

TEST(Hypertree, CheckerRejectsBadDecompositions) {
  Hypergraph h{{{0, 1}, {1, 2}}};
  // Guard does not cover the bag.
  HypertreeDecomposition bad_cover;
  bad_cover.chi = {{0, 1, 2}};
  bad_cover.lambda = {{0}};
  EXPECT_FALSE(IsValidGeneralizedHypertree(h, bad_cover));
  // Edge not inside any bag.
  HypertreeDecomposition missing_edge;
  missing_edge.chi = {{0, 1}};
  missing_edge.lambda = {{0}};
  EXPECT_FALSE(IsValidGeneralizedHypertree(h, missing_edge));
  // Valid single-node decomposition.
  HypertreeDecomposition good;
  good.chi = {{0, 1, 2}};
  good.lambda = {{0, 1}};
  EXPECT_TRUE(IsValidGeneralizedHypertree(h, good));
}

TEST(Hypertree, SolvesAgreeWithSearch) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(6, 3, 8, 0.45, &rng);
    int width = -1;
    auto ht = SolveWithHypertreeHeuristic(csp, &width);
    BacktrackingSolver solver(csp);
    auto bt = solver.Solve();
    EXPECT_EQ(ht.has_value(), bt.has_value()) << trial;
    if (ht.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*ht)) << trial;
    }
    EXPECT_GE(width, 1);
  }
}

TEST(Hypertree, SolvesAcyclicInstancesWithWidthOne) {
  // A chain-structured ternary CSP: acyclic, so width 1.
  CspInstance csp(5, 2);
  std::vector<Tuple> parity;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        if ((x ^ y ^ z) == 0) parity.push_back({x, y, z});
      }
    }
  }
  csp.AddConstraint({0, 1, 2}, parity);
  csp.AddConstraint({2, 3, 4}, parity);
  csp.AddConstraint({0}, {{1}});
  int width = -1;
  auto solution = SolveWithHypertreeHeuristic(csp, &width);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
  EXPECT_EQ(width, 1);
}

TEST(Hypertree, UnsolvableDetected) {
  CspInstance csp = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  EXPECT_FALSE(SolveWithHypertreeHeuristic(csp).has_value());
}

TEST(Hypertree, UnconstrainedVariablesAssigned) {
  CspInstance csp(4, 3);
  csp.AddConstraint({1, 2}, {{0, 1}});
  auto solution = SolveWithHypertreeHeuristic(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(Hypertree, HigherArityInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 6; ++trial) {
    // Random 3-SAT-like ternary instance.
    CspInstance csp(6, 2);
    for (int c = 0; c < 6; ++c) {
      std::vector<int> scope = rng.SampleDistinct(6, 3);
      std::vector<Tuple> allowed;
      for (int code = 0; code < 8; ++code) {
        if (rng.Bernoulli(0.8)) {
          allowed.push_back({code & 1, (code >> 1) & 1, (code >> 2) & 1});
        }
      }
      if (allowed.empty()) allowed.push_back({0, 0, 0});
      csp.AddConstraint(scope, allowed);
    }
    auto ht = SolveWithHypertreeHeuristic(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(ht.has_value(), solver.Solve().has_value()) << trial;
  }
}

}  // namespace
}  // namespace cspdb
