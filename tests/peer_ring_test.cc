// Consistent-hash ring properties: determinism (layout is a pure
// function of the member id set), order-independence, reasonable balance
// across virtual nodes, and minimal ownership churn when a member joins.

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/peer_ring.h"
#include "service/fingerprint.h"

namespace cspdb::net {
namespace {

service::Fingerprint Fp(uint64_t lo, uint64_t hi) {
  service::Fingerprint fp;
  fp.lo = lo;
  fp.hi = hi;
  fp.exact = true;
  return fp;
}

std::vector<service::Fingerprint> SampleFingerprints(int n) {
  std::vector<service::Fingerprint> out;
  out.reserve(n);
  uint64_t x = 0x243f6a8885a308d3ull;  // deterministic splitmix walk
  for (int i = 0; i < n; ++i) {
    x += 0x9e3779b97f4a7c15ull;
    uint64_t lo = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    uint64_t hi = (lo ^ (lo >> 27)) * 0x94d049bb133111ebull;
    out.push_back(Fp(lo, hi));
  }
  return out;
}

TEST(PeerRing, OwnershipIsDeterministicAndOrderIndependent) {
  const std::vector<PeerId> forward = {{"127.0.0.1:4701"},
                                       {"127.0.0.1:4702"},
                                       {"127.0.0.1:4703"}};
  const std::vector<PeerId> reversed = {{"127.0.0.1:4703"},
                                        {"127.0.0.1:4701"},
                                        {"127.0.0.1:4702"}};
  PeerRing a(forward);
  PeerRing b(reversed);
  EXPECT_EQ(a.size(), 3);
  EXPECT_EQ(b.size(), 3);
  for (const service::Fingerprint& fp : SampleFingerprints(500)) {
    EXPECT_EQ(a.OwnerOf(fp), b.OwnerOf(fp));
  }
}

TEST(PeerRing, DuplicateMembersCollapse) {
  PeerRing ring({{"n1"}, {"n1"}, {"n2"}});
  EXPECT_EQ(ring.size(), 2);
}

TEST(PeerRing, SingleMemberOwnsEverything) {
  PeerRing ring({{"only"}});
  for (const service::Fingerprint& fp : SampleFingerprints(100)) {
    EXPECT_EQ(ring.OwnerOf(fp), "only");
  }
}

TEST(PeerRing, BalanceAcrossMembersIsReasonable) {
  // With 64 virtual nodes per member, no member of a 4-node ring should
  // own a wildly disproportionate share of a large fingerprint sample.
  PeerRing ring({{"a"}, {"b"}, {"c"}, {"d"}});
  std::map<std::string, int> owned;
  const int n = 4000;
  for (const service::Fingerprint& fp : SampleFingerprints(n)) {
    ++owned[ring.OwnerOf(fp)];
  }
  EXPECT_EQ(owned.size(), 4u);
  for (const auto& [member, count] : owned) {
    EXPECT_GT(count, n / 16) << member << " owns almost nothing";
    EXPECT_LT(count, n / 2) << member << " owns a majority";
  }
}

TEST(PeerRing, JoinMovesOnlyAFraction) {
  // Consistent hashing's point: adding a member must re-home roughly
  // 1/(n+1) of the keyspace, not rehash everything.
  PeerRing before({{"a"}, {"b"}, {"c"}});
  PeerRing after({{"a"}, {"b"}, {"c"}, {"d"}});
  const int n = 4000;
  int moved = 0;
  for (const service::Fingerprint& fp : SampleFingerprints(n)) {
    const std::string& owner_before = before.OwnerOf(fp);
    const std::string& owner_after = after.OwnerOf(fp);
    if (owner_before != owner_after) {
      ++moved;
      // Every move must be *to* the new member; a->b churn would mean
      // the ring layout of existing members changed.
      EXPECT_EQ(owner_after, "d");
    }
  }
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, n / 2);
}

TEST(PeerRing, PointHashIsStable) {
  // The ring layout must agree across processes and platforms; pin a few
  // hash values so an accidental algorithm change (which would silently
  // break rolling upgrades) fails loudly.
  EXPECT_EQ(PeerRing::PointHash("x"), PeerRing::PointHash("x"));
  EXPECT_NE(PeerRing::PointHash("x"), PeerRing::PointHash("y"));
  EXPECT_NE(PeerRing::PointHash("a#0"), PeerRing::PointHash("a#1"));
}

}  // namespace
}  // namespace cspdb::net
