// Tests for two-way RPQs (inverse roles; the [11] companion work).

#include <gtest/gtest.h>

#include "rpq/rpq_eval.h"
#include "rpq/two_way.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// Alphabet {a, b} doubled with inverses {a, b, a-, b-}.
const std::vector<std::string> kTwoWay{"a", "b", "A", "B"};

TEST(TwoWay, InverseSymbolIsInvolution) {
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(InverseSymbol(InverseSymbol(s, 2), 2), s);
  }
  EXPECT_EQ(InverseSymbol(0, 2), 2);
  EXPECT_EQ(InverseSymbol(3, 2), 1);
}

TEST(TwoWay, BackwardTraversal) {
  // 0 -a-> 1. The query "A" (a-inverse) connects 1 to 0.
  GraphDb db(2, 2);
  db.AddEdge(0, 0, 1);
  Nfa inv = Nfa::FromRegex(ParseRegex("A", kTwoWay), 4);
  EXPECT_TRUE(TwoWayRpqHolds(db, inv, 1, 0));
  EXPECT_FALSE(TwoWayRpqHolds(db, inv, 0, 1));
}

TEST(TwoWay, SiblingPattern) {
  // Two children of a common parent: x <-a- p -a-> y matched by "Aa".
  GraphDb db(3, 2);
  db.AddEdge(0, 0, 1);  // parent 0 -> child 1
  db.AddEdge(0, 0, 2);  // parent 0 -> child 2
  Nfa sibling = Nfa::FromRegex(ParseRegex("Aa", kTwoWay), 4);
  auto pairs = EvaluateTwoWayRpq(db, sibling);
  // Every child reaches every child (including itself) via the parent.
  EXPECT_TRUE(TwoWayRpqHolds(db, sibling, 1, 2));
  EXPECT_TRUE(TwoWayRpqHolds(db, sibling, 2, 1));
  EXPECT_TRUE(TwoWayRpqHolds(db, sibling, 1, 1));
  EXPECT_FALSE(TwoWayRpqHolds(db, sibling, 0, 1));
  EXPECT_EQ(pairs.size(), 4u);
}

TEST(TwoWay, ForwardFragmentMatchesPlainRpq) {
  // A 2RPQ that never uses inverses agrees with the one-way evaluator.
  Rng rng(3);
  GraphDb db(5, 2);
  for (int e = 0; e < 8; ++e) {
    db.AddEdge(rng.UniformInt(0, 4), rng.UniformInt(0, 1),
               rng.UniformInt(0, 4));
  }
  Nfa two_way = Nfa::FromRegex(ParseRegex("a(b|a)*", kTwoWay), 4);
  Nfa one_way = Nfa::FromRegex(ParseRegex("a(b|a)*", {"a", "b"}), 2);
  EXPECT_EQ(EvaluateTwoWayRpq(db, two_way), EvaluateRpq(db, one_way));
}

TEST(TwoWay, UndirectedReachability) {
  // (a|A)*: reachability ignoring edge direction.
  GraphDb db(4, 1);
  db.AddEdge(0, 0, 1);
  db.AddEdge(2, 0, 1);  // 2 points into 1
  Nfa undirected =
      Nfa::FromRegex(ParseRegex("(a|A)*", {"a", "A"}), 2);
  EXPECT_TRUE(TwoWayRpqHolds(db, undirected, 0, 2));
  EXPECT_FALSE(TwoWayRpqHolds(db, undirected, 0, 3));
  Nfa directed = Nfa::FromRegex(ParseRegex("a*", {"a", "A"}), 2);
  EXPECT_FALSE(TwoWayRpqHolds(db, directed, 0, 2));
}

}  // namespace
}  // namespace cspdb
