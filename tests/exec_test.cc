// The execution substrate: work-stealing thread pool, fork/join task
// groups, data-parallel loops, and cooperative cancellation tokens.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cancellation.h"
#include "exec/thread_pool.h"

namespace cspdb::exec {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  });
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(3, 4, 10, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ThreadPool, SingleThreadPoolDegeneratesToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  // Caller participates, so with one worker the chunks run in order on
  // the calling thread (no data race on `order`).
  pool.ParallelFor(0, 10, 3, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, NestedParallelForInsideTasksDoesNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  TaskGroup group(&pool);
  for (int t = 0; t < 8; ++t) {
    group.Run([&] {
      pool.ParallelFor(0, 50, 5, [&](int64_t lo, int64_t hi) {
        total.fetch_add(hi - lo, std::memory_order_relaxed);
      });
    });
  }
  group.Wait();
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(ThreadPool, TaskGroupTasksMaySpawnIntoSameGroup) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Run([&] {
      done.fetch_add(1, std::memory_order_relaxed);
      group.Run([&] { done.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 20);
}

TEST(ThreadPool, GlobalPoolExistsAndWorks) {
  std::atomic<int> done{0};
  ThreadPool::Global().ParallelFor(0, 16, 1, [&](int64_t lo, int64_t hi) {
    done.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 16);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
}

TEST(Cancellation, RequestCancelLatches) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.RequestCancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.cancelled());  // stays set
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancellation, DeadlineFires) {
  CancellationToken token;
  token.CancelAfter(std::chrono::milliseconds(5));
  EXPECT_FALSE(token.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancellation, ParentChainPropagates) {
  CancellationToken parent;
  CancellationToken child;
  child.set_parent(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.RequestCancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(parent.cancelled());
  // Child's own flag is independent of the parent's.
  parent.Reset();
  EXPECT_FALSE(child.cancelled());
  child.RequestCancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(Cancellation, TokenStopsPoolWorkCooperatively) {
  ThreadPool pool(4);
  CancellationToken token;
  std::atomic<int64_t> done{0};
  token.RequestCancel();
  pool.ParallelFor(0, 1000, 10, [&](int64_t lo, int64_t hi) {
    if (token.cancelled()) return;  // kernels poll at chunk granularity
    done.fetch_add(hi - lo, std::memory_order_relaxed);
  });
  EXPECT_EQ(done.load(), 0);
}

}  // namespace
}  // namespace cspdb::exec
