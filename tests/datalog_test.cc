// Tests for the Datalog engine (Section 4): program well-formedness,
// naive and semi-naive evaluation, k-width, and the Non-2-Colorability
// example program.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// Transitive closure program: T(x,y) :- E(x,y); T(x,y) :- T(x,z), E(z,y).
DatalogProgram TransitiveClosure() {
  DatalogProgram p;
  p.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
  p.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"E", {2, 1}}}, 3});
  p.SetGoal("T");
  return p;
}

Structure DirectedPath(int n) {
  Structure g(GraphVocabulary(), n);
  for (int i = 0; i + 1 < n; ++i) g.AddTuple(0, {i, i + 1});
  return g;
}

TEST(DatalogProgram, WidthComputation) {
  DatalogProgram p = TransitiveClosure();
  EXPECT_EQ(p.Width(), 3);
  EXPECT_TRUE(p.IsKDatalog(3));
  EXPECT_FALSE(p.IsKDatalog(2));
}

TEST(DatalogProgram, IdbEdbClassification) {
  DatalogProgram p = TransitiveClosure();
  EXPECT_TRUE(p.IsIdb("T"));
  EXPECT_FALSE(p.IsIdb("E"));
  EXPECT_EQ(p.ArityOf("T"), 2);
  EXPECT_EQ(p.ArityOf("E"), 2);
}

TEST(DatalogEval, TransitiveClosureOnPath) {
  Structure g = DirectedPath(5);
  DatalogResult naive = EvaluateNaive(TransitiveClosure(), g);
  // All pairs i < j.
  EXPECT_EQ(naive.Facts("T").size(), 10u);
  EXPECT_TRUE(naive.Facts("T").count({0, 4}) > 0);
  EXPECT_FALSE(naive.Facts("T").count({4, 0}) > 0);
}

TEST(DatalogEval, SemiNaiveMatchesNaive) {
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    Structure g = RandomDigraph(6, 0.3, &rng);
    DatalogProgram p = TransitiveClosure();
    DatalogResult naive = EvaluateNaive(p, g);
    DatalogResult semi = EvaluateSemiNaive(p, g);
    EXPECT_EQ(naive.Facts("T"), semi.Facts("T")) << trial;
  }
}

TEST(DatalogEval, SemiNaiveFiresFewerRules) {
  Structure g = DirectedPath(12);
  DatalogProgram p = TransitiveClosure();
  DatalogResult naive = EvaluateNaive(p, g);
  DatalogResult semi = EvaluateSemiNaive(p, g);
  EXPECT_EQ(naive.Facts("T"), semi.Facts("T"));
  EXPECT_LT(semi.derivations, naive.derivations);
}

TEST(DatalogEval, ZeroAryGoal) {
  DatalogProgram p;
  p.AddRule({{"Q", {}}, {{"E", {0, 0}}}, 1});
  p.SetGoal("Q");
  Structure with_loop(GraphVocabulary(), 2);
  with_loop.AddTuple(0, {1, 1});
  Structure without(GraphVocabulary(), 2);
  without.AddTuple(0, {0, 1});
  EXPECT_TRUE(EvaluateSemiNaive(p, with_loop).GoalDerived(p));
  EXPECT_FALSE(EvaluateSemiNaive(p, without).GoalDerived(p));
}

TEST(DatalogEval, NonTwoColorabilityProgramOnCycles) {
  DatalogProgram p = NonTwoColorabilityProgram();
  EXPECT_TRUE(p.IsKDatalog(4));
  // Odd cycles have an odd closed walk; even cycles do not.
  EXPECT_TRUE(EvaluateSemiNaive(p, CycleGraph(5)).GoalDerived(p));
  EXPECT_TRUE(EvaluateSemiNaive(p, CycleGraph(7)).GoalDerived(p));
  EXPECT_FALSE(EvaluateSemiNaive(p, CycleGraph(6)).GoalDerived(p));
  EXPECT_FALSE(EvaluateSemiNaive(p, PathGraph(6)).GoalDerived(p));
}

TEST(DatalogEval, NonTwoColorabilityMatchesBipartitenessOnRandomGraphs) {
  Rng rng(37);
  DatalogProgram p = NonTwoColorabilityProgram();
  for (int trial = 0; trial < 10; ++trial) {
    Structure g = RandomUndirectedGraph(7, 0.25, &rng);
    EXPECT_EQ(EvaluateSemiNaive(p, g).GoalDerived(p), !IsBipartite(g))
        << trial;
  }
}

TEST(DatalogEval, EmptyEdbDerivesNothing) {
  Structure g(GraphVocabulary(), 3);
  DatalogResult result = EvaluateSemiNaive(TransitiveClosure(), g);
  EXPECT_TRUE(result.Facts("T").empty());
}

TEST(DatalogEval, IterationCountsReasonable) {
  Structure g = DirectedPath(9);
  DatalogResult semi = EvaluateSemiNaive(TransitiveClosure(), g);
  // Path of length 8 needs about 8 rounds to saturate.
  EXPECT_GE(semi.iterations, 7);
  EXPECT_LE(semi.iterations, 11);
}

}  // namespace
}  // namespace cspdb
