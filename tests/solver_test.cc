// Tests for the backtracking solver family (plain, forward checking,
// MAC), including cross-checks against brute-force enumeration.

#include <gtest/gtest.h>

#include <vector>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

int64_t BruteForceCount(const CspInstance& csp) {
  int64_t count = 0;
  std::vector<int> assignment(csp.num_variables());
  int64_t total = 1;
  for (int v = 0; v < csp.num_variables(); ++v) total *= csp.num_values();
  for (int64_t code = 0; code < total; ++code) {
    int64_t c = code;
    for (int v = 0; v < csp.num_variables(); ++v) {
      assignment[v] = static_cast<int>(c % csp.num_values());
      c /= csp.num_values();
    }
    if (csp.IsSolution(assignment)) ++count;
  }
  return count;
}

class SolverModes : public ::testing::TestWithParam<Propagation> {};

TEST_P(SolverModes, TriangleThreeColoring) {
  Structure a = CliqueGraph(3);
  CspInstance csp = ToCspInstance(a, CliqueGraph(3));
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
  // 3! proper 3-colorings of a triangle.
  EXPECT_EQ(solver.CountSolutions(), 6);
}

TEST_P(SolverModes, OddCycleNotTwoColorable) {
  CspInstance csp = ToCspInstance(CycleGraph(7), CliqueGraph(2));
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  EXPECT_FALSE(solver.Solve().has_value());
  EXPECT_FALSE(solver.stats().aborted);
}

TEST_P(SolverModes, CountMatchesBruteForceOnRandomInstances) {
  Rng rng(101);
  for (int trial = 0; trial < 12; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.4, &rng);
    SolverOptions options;
    options.propagation = GetParam();
    BacktrackingSolver solver(csp, options);
    EXPECT_EQ(solver.CountSolutions(), BruteForceCount(csp)) << trial;
  }
}

TEST_P(SolverModes, TernaryConstraints) {
  // x + y + z == 1 (mod 2) over three Boolean variables, plus x == 0.
  CspInstance csp(3, 2);
  std::vector<Tuple> odd;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        if ((x + y + z) % 2 == 1) odd.push_back({x, y, z});
      }
    }
  }
  csp.AddConstraint({0, 1, 2}, odd);
  csp.AddConstraint({0}, {{0}});
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  EXPECT_EQ(solver.CountSolutions(), 2);  // (0,0,1) and (0,1,0)
}

TEST_P(SolverModes, RepeatedVariableInScope) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 0, 1}, {{0, 0, 1}, {1, 0, 1}});
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  // Only (0,0,1) has consistent repeats: x0=0, x1=1.
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(*solution, (std::vector<int>{0, 1}));
  EXPECT_EQ(solver.CountSolutions(), 1);
}

TEST_P(SolverModes, EmptyRelationUnsolvable) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 1}, {});
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  EXPECT_FALSE(solver.Solve().has_value());
}

TEST_P(SolverModes, NoVariables) {
  CspInstance csp(0, 3);
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  EXPECT_TRUE(solver.Solve().has_value());
  EXPECT_EQ(solver.CountSolutions(), 1);
}

TEST_P(SolverModes, NoValues) {
  CspInstance csp(2, 0);
  SolverOptions options;
  options.propagation = GetParam();
  BacktrackingSolver solver(csp, options);
  EXPECT_FALSE(solver.Solve().has_value());
}

INSTANTIATE_TEST_SUITE_P(AllPropagationModes, SolverModes,
                         ::testing::Values(Propagation::kNone,
                                           Propagation::kForwardChecking,
                                           Propagation::kGac),
                         [](const auto& info) {
                           switch (info.param) {
                             case Propagation::kNone:
                               return "Plain";
                             case Propagation::kForwardChecking:
                               return "ForwardChecking";
                             case Propagation::kGac:
                               return "Mac";
                           }
                           return "Unknown";
                         });

TEST(Solver, NodeLimitAborts) {
  Rng rng(5);
  CspInstance csp = ToCspInstance(RandomUndirectedGraph(14, 0.5, &rng),
                                  CliqueGraph(3));
  SolverOptions options;
  options.propagation = Propagation::kNone;
  options.node_limit = 5;
  BacktrackingSolver solver(csp, options);
  auto result = solver.Solve();
  if (solver.stats().aborted) {
    EXPECT_FALSE(result.has_value());
    EXPECT_LE(solver.stats().nodes, 6);
  }
}

TEST(Solver, MacPrunesMoreThanPlain) {
  Rng rng(31);
  CspInstance csp = RandomBinaryCsp(10, 4, 18, 0.5, &rng);
  SolverOptions plain;
  plain.propagation = Propagation::kNone;
  BacktrackingSolver p(csp, plain);
  p.Solve();
  SolverOptions mac;
  mac.propagation = Propagation::kGac;
  BacktrackingSolver m(csp, mac);
  m.Solve();
  EXPECT_LE(m.stats().nodes, p.stats().nodes);
}

TEST(Solver, AgreesWithHomomorphismSearch) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomDigraph(5, 0.3, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    CspInstance csp = ToCspInstance(a, b);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(solver.Solve().has_value(),
              FindHomomorphism(a, b).has_value())
        << trial;
  }
}

}  // namespace
}  // namespace cspdb
