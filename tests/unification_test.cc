// "Grand unification" sweeps: every route the library offers for the same
// decision, run against each other on common instance families — the
// executable form of the paper's thesis that these are all one problem.

#include <gtest/gtest.h>

#include <tuple>

#include "boolean/hell_nesetril.h"
#include "csp/backjump_solver.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "db/algebra.h"
#include "db/containment.h"
#include "gen/generators.h"
#include "logic/bounded_formula.h"
#include "relational/core.h"
#include "relational/homomorphism.h"
#include "relational/structure_ops.h"
#include "rpq/graphdb.h"
#include "rpq/rpq_eval.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

class GrandUnification : public ::testing::TestWithParam<int> {};

TEST_P(GrandUnification, SevenDecidersAgree) {
  Rng rng(GetParam());
  Structure a = RandomTreewidthDigraph(6, 2, 0.85, &rng);
  Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  CspInstance csp = ToCspInstance(a, b);

  bool search = BacktrackingSolver(csp).Solve().has_value();
  bool backjump = BackjumpSolver(csp).Solve().has_value();
  bool join = SolvableByJoin(csp);
  bool join_relation = !SolutionsAsRelation(csp).empty();
  bool buckets = SolveWithTreewidthHeuristic(csp).has_value();
  bool hypertree = SolveWithHypertreeHeuristic(csp).has_value();
  bool formula = EvaluateSentence(FormulaForStructure(a), b);
  bool query = HomomorphismViaQueryEvaluation(a, b);

  EXPECT_EQ(search, backjump);
  EXPECT_EQ(search, join);
  EXPECT_EQ(search, join_relation);
  EXPECT_EQ(search, buckets);
  EXPECT_EQ(search, hypertree);
  EXPECT_EQ(search, formula);
  EXPECT_EQ(search, query);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GrandUnification,
                         ::testing::Range(7000, 7012));

TEST(SolutionsAsRelation, MatchesSolverEnumeration) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.4, &rng);
    DbRelation solutions = SolutionsAsRelation(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(static_cast<int64_t>(solutions.size()),
              solver.CountSolutions())
        << trial;
    for (auto row : solutions.rows()) {
      EXPECT_TRUE(csp.IsSolution(row.ToTuple())) << trial;
    }
  }
}

TEST(SolutionsAsRelation, UnconstrainedVariablesCross) {
  CspInstance csp(2, 3);
  csp.AddConstraint({0}, {{1}});
  DbRelation solutions = SolutionsAsRelation(csp);
  EXPECT_EQ(solutions.size(), 3u);  // x0 = 1 crossed with 3 values of x1
}

TEST(StructureOps, DisjointUnionIsCoproduct) {
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(4, 0.4, &rng);
    Structure c = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    Structure u = DisjointUnion(a, b);
    EXPECT_EQ(FindHomomorphism(u, c).has_value(),
              FindHomomorphism(a, c).has_value() &&
                  FindHomomorphism(b, c).has_value())
        << trial;
  }
}

TEST(StructureOps, UnionWithSelfPreservesCore) {
  Structure c5 = CycleGraph(5);
  Structure doubled = DisjointUnion(c5, c5);
  Structure core = CoreOf(doubled);
  EXPECT_EQ(core.domain_size(), 5);
  EXPECT_TRUE(HomomorphicallyEquivalent(core, c5));
}

TEST(GraphDbBridge, RoundTrip) {
  Rng rng(17);
  GraphDb db = RandomGraphDb(5, 3, 10, &rng);
  Structure a = StructureFromGraphDb(db, {"x", "y", "z"});
  EXPECT_EQ(a.vocabulary().IndexOf("y"), 1);
  GraphDb back = GraphDbFromStructure(a);
  EXPECT_EQ(back.NumEdges(), db.NumEdges());
  for (const auto& [from, label, to] : db.edges()) {
    EXPECT_TRUE(back.HasEdge(from, label, to));
  }
}

TEST(GraphDbBridge, RpqStarEqualsDatalogTransitiveClosure) {
  // E* reachability on a digraph: the RPQ engine and the Datalog engine
  // must produce the same pairs (up to the reflexive diagonal).
  Rng rng(19);
  Structure g = RandomDigraph(6, 0.25, &rng);
  GraphDb db = GraphDbFromStructure(g);
  auto star = EvaluateRpq(db, ParseRegex("e+", {"e"}));

  DatalogProgram tc;
  tc.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
  tc.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"E", {2, 1}}}, 3});
  tc.SetGoal("T");
  DatalogResult closure = EvaluateSemiNaive(tc, g);

  TupleSet star_set;
  for (const auto& [x, y] : star) star_set.insert({x, y});
  EXPECT_EQ(star_set, closure.Facts("T"));
}

}  // namespace
}  // namespace cspdb
