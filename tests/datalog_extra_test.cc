// Deeper Datalog engine coverage: multiple IDBs, mutual recursion,
// same-generation, nonlinear rules, and evaluation invariants.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

Structure DirectedPath(int n) {
  Structure g(GraphVocabulary(), n);
  for (int i = 0; i + 1 < n; ++i) g.AddTuple(0, {i, i + 1});
  return g;
}

// Even(x,y)/Odd(x,y): walks of even/odd length — mutual recursion.
DatalogProgram EvenOddWalks() {
  DatalogProgram p;
  p.AddRule({{"Odd", {0, 1}}, {{"E", {0, 1}}}, 2});
  p.AddRule({{"Even", {0, 1}}, {{"Odd", {0, 2}}, {"E", {2, 1}}}, 3});
  p.AddRule({{"Odd", {0, 1}}, {{"Even", {0, 2}}, {"E", {2, 1}}}, 3});
  p.SetGoal("Even");
  return p;
}

TEST(DatalogExtra, MutualRecursionEvenOdd) {
  Structure path = DirectedPath(6);
  DatalogResult r = EvaluateSemiNaive(EvenOddWalks(), path);
  // On a simple path, walk length == j - i.
  EXPECT_TRUE(r.Facts("Odd").count({0, 1}) > 0);
  EXPECT_TRUE(r.Facts("Even").count({0, 2}) > 0);
  EXPECT_TRUE(r.Facts("Odd").count({0, 5}) > 0);
  EXPECT_FALSE(r.Facts("Even").count({0, 5}) > 0);
  EXPECT_FALSE(r.Facts("Odd").count({0, 2}) > 0);
}

TEST(DatalogExtra, MutualRecursionAgreesAcrossEvaluators) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomDigraph(6, 0.3, &rng);
    DatalogProgram p = EvenOddWalks();
    DatalogResult naive = EvaluateNaive(p, g);
    DatalogResult semi = EvaluateSemiNaive(p, g);
    EXPECT_EQ(naive.Facts("Even"), semi.Facts("Even")) << trial;
    EXPECT_EQ(naive.Facts("Odd"), semi.Facts("Odd")) << trial;
  }
}

TEST(DatalogExtra, SameGeneration) {
  // SG(x,y) :- x = y is not expressible without equality; classic form:
  // SG(x,y) :- Up(z,x), Up(z,y)  (siblings)
  // SG(x,y) :- Up(z,x), SG(z,w), Up(w,y).
  Vocabulary voc;
  voc.AddSymbol("Up", 2);
  // A small tree: 0 -> 1,2 ; 1 -> 3,4 ; 2 -> 5.
  Structure tree(voc, 6);
  tree.AddTuple(0, {0, 1});
  tree.AddTuple(0, {0, 2});
  tree.AddTuple(0, {1, 3});
  tree.AddTuple(0, {1, 4});
  tree.AddTuple(0, {2, 5});
  DatalogProgram p;
  p.AddRule({{"SG", {0, 1}}, {{"Up", {2, 0}}, {"Up", {2, 1}}}, 3});
  p.AddRule({{"SG", {0, 1}},
             {{"Up", {2, 0}}, {"SG", {2, 3}}, {"Up", {3, 1}}},
             4});
  p.SetGoal("SG");
  DatalogResult r = EvaluateSemiNaive(p, tree);
  EXPECT_TRUE(r.Facts("SG").count({1, 2}) > 0);  // siblings
  EXPECT_TRUE(r.Facts("SG").count({3, 5}) > 0);  // cousins (same depth)
  EXPECT_TRUE(r.Facts("SG").count({3, 4}) > 0);
  EXPECT_FALSE(r.Facts("SG").count({1, 5}) > 0);  // different depths
  EXPECT_FALSE(r.Facts("SG").count({0, 3}) > 0);
}

TEST(DatalogExtra, NonlinearRule) {
  // Nonlinear transitive closure: T(x,y) :- T(x,z), T(z,y).
  DatalogProgram p;
  p.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
  p.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"T", {2, 1}}}, 3});
  p.SetGoal("T");
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Structure g = RandomDigraph(6, 0.25, &rng);
    DatalogProgram linear;
    linear.AddRule({{"T", {0, 1}}, {{"E", {0, 1}}}, 2});
    linear.AddRule({{"T", {0, 1}}, {{"T", {0, 2}}, {"E", {2, 1}}}, 3});
    linear.SetGoal("T");
    EXPECT_EQ(EvaluateSemiNaive(p, g).Facts("T"),
              EvaluateSemiNaive(linear, g).Facts("T"))
        << trial;
    // Nonlinear doubling converges in fewer rounds.
    EXPECT_LE(EvaluateSemiNaive(p, g).iterations,
              EvaluateSemiNaive(linear, g).iterations + 1)
        << trial;
  }
}

TEST(DatalogExtra, IdbFeedingMultipleHeads) {
  // Reachable-from-0 via a seed fact predicate.
  Vocabulary voc;
  voc.AddSymbol("E", 2);
  voc.AddSymbol("Src", 1);
  Structure g(voc, 5);
  g.AddTuple(0, {0, 1});
  g.AddTuple(0, {1, 2});
  g.AddTuple(0, {3, 4});
  g.AddTuple(1, {0});
  DatalogProgram p;
  p.AddRule({{"Reach", {0}}, {{"Src", {0}}}, 1});
  p.AddRule({{"Reach", {1}}, {{"Reach", {0}}, {"E", {0, 1}}}, 2});
  p.AddRule({{"Unreached?", {}}, {{"Reach", {0}}}, 1});
  p.SetGoal("Reach");
  DatalogResult r = EvaluateSemiNaive(p, g);
  EXPECT_EQ(r.Facts("Reach").size(), 3u);  // 0, 1, 2
  EXPECT_FALSE(r.Facts("Reach").count({3}) > 0);
  EXPECT_EQ(r.Facts("Unreached?").size(), 1u);  // the 0-ary fact
}

TEST(DatalogExtra, BodyWithRepeatedVariables) {
  // Loops reachable in one step: L(x) :- E(x, x).
  DatalogProgram p;
  p.AddRule({{"L", {0}}, {{"E", {0, 0}}}, 1});
  p.SetGoal("L");
  Structure g(GraphVocabulary(), 3);
  g.AddTuple(0, {1, 1});
  g.AddTuple(0, {0, 2});
  DatalogResult r = EvaluateSemiNaive(p, g);
  EXPECT_EQ(r.Facts("L").size(), 1u);
  EXPECT_TRUE(r.Facts("L").count({1}) > 0);
}

TEST(DatalogExtra, DerivationCountsMonotoneInEdb) {
  // Adding facts never removes derived facts (monotonicity of Datalog).
  Rng rng(11);
  Structure small = RandomDigraph(6, 0.2, &rng);
  Structure big = small;
  big.AddTuple(0, {0, 5});
  big.AddTuple(0, {5, 3});
  DatalogProgram p = EvenOddWalks();
  DatalogResult r_small = EvaluateSemiNaive(p, small);
  DatalogResult r_big = EvaluateSemiNaive(p, big);
  for (const Tuple& fact : r_small.Facts("Even")) {
    EXPECT_TRUE(r_big.Facts("Even").count(fact) > 0);
  }
  for (const Tuple& fact : r_small.Facts("Odd")) {
    EXPECT_TRUE(r_big.Facts("Odd").count(fact) > 0);
  }
}

}  // namespace
}  // namespace cspdb
