// Sanity tests for the workload generators: determinism under a fixed
// seed and respect for the advertised structural parameters.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Generators, DeterministicUnderSeed) {
  Rng rng1(42), rng2(42);
  Structure g1 = RandomDigraph(8, 0.3, &rng1);
  Structure g2 = RandomDigraph(8, 0.3, &rng2);
  EXPECT_TRUE(g1.SameTuplesAs(g2));
  CnfFormula f1 = RandomKSat(6, 10, 3, &rng1);
  CnfFormula f2 = RandomKSat(6, 10, 3, &rng2);
  EXPECT_EQ(f1.ToString(), f2.ToString());
}

TEST(Generators, DifferentSeedsDiffer) {
  Rng rng1(1), rng2(2);
  Structure g1 = RandomDigraph(8, 0.3, &rng1);
  Structure g2 = RandomDigraph(8, 0.3, &rng2);
  EXPECT_FALSE(g1.SameTuplesAs(g2));  // overwhelmingly likely
}

TEST(Generators, UndirectedGraphsAreSymmetricAndLoopless) {
  Rng rng(3);
  Structure g = RandomUndirectedGraph(8, 0.4, &rng);
  for (const Tuple& t : g.tuples(0)) {
    EXPECT_NE(t[0], t[1]);
    EXPECT_TRUE(g.HasTuple(0, {t[1], t[0]}));
  }
}

TEST(Generators, KSatRespectsClauseWidthAndDistinctness) {
  Rng rng(5);
  CnfFormula phi = RandomKSat(8, 20, 3, &rng);
  EXPECT_EQ(phi.clauses.size(), 20u);
  for (const Clause& clause : phi.clauses) {
    ASSERT_EQ(clause.literals.size(), 3u);
    EXPECT_NE(clause.literals[0].var, clause.literals[1].var);
    EXPECT_NE(clause.literals[1].var, clause.literals[2].var);
    EXPECT_NE(clause.literals[0].var, clause.literals[2].var);
  }
}

TEST(Generators, HornFormulasAreHorn) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(RandomHorn(8, 15, 3, &rng).IsHorn());
  }
}

TEST(Generators, BinaryCspRespectsTightness) {
  Rng rng(9);
  CspInstance csp = RandomBinaryCsp(6, 4, 8, 0.5, &rng);
  EXPECT_EQ(csp.constraints().size(), 8u);
  for (const Constraint& c : csp.constraints()) {
    EXPECT_EQ(c.arity(), 2);
    // tightness 0.5 of 16 cells => exactly 8 allowed tuples.
    EXPECT_EQ(c.allowed.size(), 8u);
  }
}

TEST(Generators, PartialKTreesHaveBoundedTreewidth) {
  Rng rng(11);
  for (int k = 1; k <= 3; ++k) {
    for (int trial = 0; trial < 4; ++trial) {
      Graph g = RandomPartialKTree(10, k, 1.0, &rng);
      EXPECT_LE(ExactTreewidth(g), k) << "k=" << k;
    }
  }
}

TEST(Generators, TreewidthCspPrimalGraphBounded) {
  Rng rng(13);
  CspInstance csp = RandomTreewidthCsp(10, 2, 3, 0.3, 1.0, &rng);
  EXPECT_LE(ExactTreewidth(GaifmanGraphOfCsp(csp)), 2);
}

TEST(Generators, GraphDbBounds) {
  Rng rng(15);
  GraphDb db = RandomGraphDb(6, 3, 20, &rng);
  EXPECT_LE(db.NumEdges(), 20);  // duplicates collapse
  for (const auto& [from, label, to] : db.edges()) {
    EXPECT_LT(from, 6);
    EXPECT_LT(to, 6);
    EXPECT_LT(label, 3);
  }
}

TEST(Generators, SampleDistinctIsDistinct) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> sample = rng.SampleDistinct(10, 5);
    std::sort(sample.begin(), sample.end());
    EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) ==
                sample.end());
  }
}

}  // namespace
}  // namespace cspdb
