// Tests for the fingerprint-keyed runtime-stats store (obs/stats_store.h):
// record/query round-trips, ring-history ordering, aggregate exactness,
// LRU bounding under a Zipf-skewed key stream, JSON dump shape, and a
// multi-threaded hammer (StatsStoreConcurrency is in the TSan CI regex).

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/stats_store.h"
#include "util/rng.h"

namespace cspdb::obs {
namespace {

RequestOutcome MakeOutcome(int64_t wall_ns, int32_t kind = 0) {
  RequestOutcome outcome;
  outcome.kind = kind;
  outcome.status = 0;
  outcome.cache_disposition = 1;
  outcome.work_items = wall_ns / 10;
  outcome.wall_ns = wall_ns;
  outcome.queue_wait_ns = wall_ns / 100;
  return outcome;
}

TEST(StatsStoreTest, QueryUnknownKeyIsEmpty) {
  StatsStore store;
  EXPECT_FALSE(store.Query({1, 2}).has_value());
  EXPECT_EQ(store.size(), 0u);
}

TEST(StatsStoreTest, RecordThenQueryRoundTrips) {
  StatsStore store;
  const StatsKey key{0xdeadbeef, 0xcafe};
  store.Record(key, MakeOutcome(1'000, /*kind=*/2));
  const auto summary = store.Query(key);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->count, 1);
  EXPECT_EQ(summary->total_wall_ns, 1'000);
  EXPECT_EQ(summary->min_wall_ns, 1'000);
  EXPECT_EQ(summary->max_wall_ns, 1'000);
  ASSERT_EQ(summary->recent.size(), 1u);
  EXPECT_EQ(summary->recent[0].kind, 2);
  EXPECT_EQ(summary->recent[0].wall_ns, 1'000);
  EXPECT_EQ(store.size(), 1u);
}

TEST(StatsStoreTest, RepeatedFingerprintAccumulatesAggregates) {
  StatsStore store;
  const StatsKey key{7, 7};
  for (int64_t ns : {500, 100, 900, 300}) {
    store.Record(key, MakeOutcome(ns));
  }
  const auto summary = store.Query(key);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->count, 4);
  EXPECT_EQ(summary->total_wall_ns, 1'800);
  EXPECT_EQ(summary->min_wall_ns, 100);
  EXPECT_EQ(summary->max_wall_ns, 900);
  // Newest first.
  ASSERT_EQ(summary->recent.size(), 4u);
  EXPECT_EQ(summary->recent[0].wall_ns, 300);
  EXPECT_EQ(summary->recent[3].wall_ns, 500);
}

TEST(StatsStoreTest, RingRetainsOnlyMostRecentOutcomes) {
  StatsStoreOptions options;
  options.history_per_key = 3;
  StatsStore store(options);
  const StatsKey key{1, 0};
  for (int64_t i = 1; i <= 10; ++i) {
    store.Record(key, MakeOutcome(i * 100));
  }
  const auto summary = store.Query(key);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->count, 10);  // aggregates cover all outcomes...
  EXPECT_EQ(summary->min_wall_ns, 100);
  ASSERT_EQ(summary->recent.size(), 3u);  // ...the ring only the last 3
  EXPECT_EQ(summary->recent[0].wall_ns, 1'000);
  EXPECT_EQ(summary->recent[1].wall_ns, 900);
  EXPECT_EQ(summary->recent[2].wall_ns, 800);
}

TEST(StatsStoreTest, StaysBoundedUnderZipfianWorkload) {
  StatsStoreOptions options;
  options.max_keys = 64;
  options.history_per_key = 4;
  StatsStore store(options);
  Rng rng(42);
  // Zipf-ish key stream over a key space 100x the capacity: the head
  // keys recur constantly, the tail churns through eviction.
  for (int i = 0; i < 50'000; ++i) {
    uint64_t k;
    if (rng.UniformInt(0, 9) < 7) {
      k = static_cast<uint64_t>(rng.UniformInt(0, 7));  // hot head
    } else {
      k = static_cast<uint64_t>(rng.UniformInt(0, 6'399));  // cold tail
    }
    store.Record({k, k * 31}, MakeOutcome(100 + static_cast<int64_t>(k)));
  }
  // Bounded: never more resident keys than capacity (rounded up to the
  // shard granularity documented in StatsStoreOptions).
  EXPECT_LE(store.size(), 64u);
  // The hot head keys survive the churn.
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_TRUE(store.Query({k, k * 31}).has_value()) << "hot key " << k;
  }
}

TEST(StatsStoreTest, EvictionDropsLeastRecentlyRecordedKey) {
  StatsStoreOptions options;
  options.max_keys = 8;  // 1 key per shard: any 2 same-shard keys collide
  StatsStore store(options);
  // Two keys that land in the same shard (identical low/high halves mod
  // hashing is not guaranteed, so find a colliding pair by probing).
  store.Record({0, 0}, MakeOutcome(100));
  uint64_t second = 1;
  for (; second < 10'000; ++second) {
    store.Record({second, 0}, MakeOutcome(200));
    if (!store.Query({0, 0}).has_value()) break;  // evicted: same shard
    ASSERT_TRUE(store.Query({second, 0}).has_value());
  }
  ASSERT_LT(second, 10'000u) << "no same-shard collision found";
  // The newly recorded key is resident, the old one gone.
  EXPECT_TRUE(store.Query({second, 0}).has_value());
  EXPECT_FALSE(store.Query({0, 0}).has_value());
}

TEST(StatsStoreTest, ClearEmptiesTheStore) {
  StatsStore store;
  store.Record({1, 1}, MakeOutcome(100));
  store.Record({2, 2}, MakeOutcome(200));
  EXPECT_EQ(store.size(), 2u);
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.Query({1, 1}).has_value());
}

TEST(StatsStoreTest, DumpJsonHasKeysAndOutcomes) {
  StatsStore store;
  store.Record({0xabc, 0}, MakeOutcome(1'500));
  store.Record({0xabc, 0}, MakeOutcome(2'500));
  const std::string json = store.DumpJson();
  EXPECT_NE(json.find("\"max_keys\""), std::string::npos);
  EXPECT_NE(json.find("\"00000000000000000000000000000abc\""),
            std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"total_wall_ns\": 4000"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ns\": 2500"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ns\""), std::string::npos);
}

TEST(StatsStoreTest, DumpJsonOnEmptyStoreIsWellFormed) {
  StatsStore store;
  const std::string json = store.DumpJson();
  EXPECT_NE(json.find("\"keys\": []"), std::string::npos);
}

// Hammer: writers over a shared skewed key set, readers querying and
// dumping concurrently. TSan-clean per the shard-lock design; after the
// join, per-key aggregates are exact for keys that were never evicted.
TEST(StatsStoreConcurrency, ParallelRecordQueryDump) {
  StatsStoreOptions options;
  options.max_keys = 256;
  options.history_per_key = 4;
  StatsStore store(options);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&store, t] {
      Rng rng(77 + t);
      for (int i = 0; i < kPerWriter; ++i) {
        const auto k = static_cast<uint64_t>(rng.UniformInt(0, 15));
        store.Record({k, 99}, MakeOutcome(100 + static_cast<int64_t>(k)));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < 2'000; ++i) {
        (void)store.Query({static_cast<uint64_t>(i % 16), 99});
        if (i % 500 == 0) (void)store.DumpJson();
        (void)store.size();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // 16 hot keys never exceed capacity, so nothing was evicted and the
  // total outcome count across keys is conserved.
  int64_t total = 0;
  for (uint64_t k = 0; k < 16; ++k) {
    const auto summary = store.Query({k, 99});
    ASSERT_TRUE(summary.has_value()) << "key " << k;
    total += summary->count;
  }
  EXPECT_EQ(total, int64_t{kWriters} * kPerWriter);
}

}  // namespace
}  // namespace cspdb::obs
