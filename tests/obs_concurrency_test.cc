// Thread-safety and escaping tests for the observability layer:
// many-threaded counter/span/flush hammering (run under
// -DCSPDB_SANITIZE=thread in CI), the sequential trace-tid registry, and
// metrics-JSON escaping of hostile metric names.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cspdb::obs {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ObsConcurrency, CountersSumExactlyAcrossThreads) {
  Counter& counter = MetricsRegistry::Global().GetCounter(
      "test.concurrency.counter");
  counter.Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), int64_t{kThreads} * kIncrements);
}

TEST(ObsConcurrency, RegistryRegistrationRacesAreSafe) {
  // All threads race to register the same names and distinct names while
  // another thread snapshots. TSan verifies the locking; the assertion
  // verifies handles are stable and counts exact.
  constexpr int kThreads = 8;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 200; ++i) {
        MetricsRegistry::Global()
            .GetCounter("test.concurrency.shared")
            .Add(1);
        MetricsRegistry::Global()
            .GetCounter("test.concurrency.t" + std::to_string(t))
            .Add(1);
        MetricsRegistry::Global()
            .GetGauge("test.concurrency.gauge")
            .UpdateMax(i);
        MetricsRegistry::Global()
            .GetTimer("test.concurrency.timer")
            .Record(1);
        if (i % 50 == 0) (void)MetricsRegistry::Global().Snapshot();
      }
    });
  }
  MetricsRegistry::Global().GetCounter("test.concurrency.shared").Reset();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(
      MetricsRegistry::Global().GetCounter("test.concurrency.shared").value(),
      kThreads * 200);
}

TEST(ObsConcurrency, HostileMetricNamesRoundTripAsValidJson) {
  // Quote, backslash, control characters, DEL, and a negative signed char
  // (UTF-8 continuation byte) — each must escape rather than corrupt.
  const std::string hostile[] = {
      "quote\"name",           "back\\slash",
      "tab\tname",             "newline\nname",
      std::string("nul\0x", 5), "del\x7fname",
      "utf8\xc3\xa9",
  };
  for (const std::string& name : hostile) {
    MetricsRegistry::Global().GetCounter("hostile." + name).Add(1);
  }
  const std::string json = MetricsRegistry::Global().SnapshotJson();
  EXPECT_NE(json.find("quote\\\"name"), std::string::npos);
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("tab\\u0009name"), std::string::npos);
  EXPECT_NE(json.find("newline\\u000aname"), std::string::npos);
  EXPECT_NE(json.find("nul\\u0000x"), std::string::npos);
  EXPECT_NE(json.find("del\\u007fname"), std::string::npos);
  // The UTF-8 bytes pass through unescaped (snprintf %x must not
  // sign-extend them into eight-digit garbage).
  EXPECT_NE(json.find("utf8\xc3\xa9"), std::string::npos);
  EXPECT_EQ(json.find("ffffff"), std::string::npos);
  // No raw control bytes survive inside the JSON.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control byte in JSON: " << static_cast<int>(c);
  }
}

TEST(ObsConcurrency, TraceTidsAreSequentialAndDistinct) {
  constexpr int kThreads = 8;
  std::vector<uint64_t> tids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &tids] {
      uint64_t first = TraceSession::CurrentTid();
      uint64_t second = TraceSession::CurrentTid();
      EXPECT_EQ(first, second);  // stable per thread
      tids[t] = first;
    });
  }
  for (std::thread& t : threads) t.join();
  std::set<uint64_t> distinct(tids.begin(), tids.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads));
  // Small sequential ids, not thread-id hashes: with at most a few
  // thousand threads ever created in the test binary, every id is tiny.
  for (uint64_t tid : tids) EXPECT_LT(tid, 100000u);
}

TEST(ObsConcurrency, ConcurrentSpansAndFlushesProduceValidTrace) {
  const std::string path = ::testing::TempDir() + "/obs_concurrency.trace";
  TraceSession& session = TraceSession::Global();
  session.Start(path);
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &session] {
      TraceSession::SetCurrentThreadName(
          ("test.obs_concurrency." + std::to_string(t)).c_str());
      for (int i = 0; i < 200; ++i) {
        session.BeginSpan("obs_concurrency.span");
        session.Instant("obs_concurrency.tick");
        session.CounterValue("obs_concurrency.value", i);
        session.EndSpan("obs_concurrency.span");
        if (i % 64 == 0) session.Flush();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  session.Stop();
  const std::string trace = ReadFileOrDie(path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("thread_name"), std::string::npos);
  EXPECT_NE(trace.find("test.obs_concurrency.0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsConcurrency, SetCurrentThreadNameSurvivesRestartAndEscapes) {
  TraceSession::SetCurrentThreadName("main \"quoted\\track\"");
  const std::string path = ::testing::TempDir() + "/obs_thread_name.trace";
  TraceSession& session = TraceSession::Global();
  session.Start(path);
  session.Instant("obs_thread_name.tick");
  session.Stop();
  const std::string trace = ReadFileOrDie(path);
  // The registered name shows up escaped in the metadata event even
  // though it was set before Start().
  EXPECT_NE(trace.find("main \\\"quoted\\\\track\\\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsConcurrency, PoolWorkersRegisterStableTraceNames) {
  const std::string path = ::testing::TempDir() + "/obs_worker_names.trace";
  TraceSession& session = TraceSession::Global();
  session.Start(path);
  exec::ThreadPool pool(3);
  pool.ParallelFor(0, 64, 1, [&session](int64_t, int64_t) {
    session.Instant("obs_worker.tick");
  });
  session.Stop();
  const std::string trace = ReadFileOrDie(path);
  EXPECT_NE(trace.find("exec.worker."), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cspdb::obs
