// Tests for the existential k-pebble game engine (Sections 4-5):
// soundness w.r.t. homomorphisms, completeness on bounded-treewidth
// inputs, the largest-winning-strategy characterization, and classic
// template examples.

#include <gtest/gtest.h>

#include <algorithm>

#include "boolean/hell_nesetril.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(PebbleGame, DuplicatorWinsWhenHomomorphismExists) {
  // Soundness: hom(A, B) implies the Duplicator wins for every k.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomDigraph(5, 0.3, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    if (!FindHomomorphism(a, b).has_value()) continue;
    for (int k = 1; k <= 3; ++k) {
      EXPECT_TRUE(PebbleGame(a, b, k).DuplicatorWins())
          << trial << " k=" << k;
    }
  }
}

TEST(PebbleGame, SpoilerPowerGrowsWithK) {
  // Monotonicity: if the Spoiler wins with k pebbles he wins with k+1.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomDigraph(5, 0.4, &rng);
    Structure b = RandomDigraph(3, 0.4, &rng, /*allow_loops=*/true);
    bool prev_spoiler_wins = false;
    for (int k = 1; k <= 3; ++k) {
      bool spoiler_wins = !PebbleGame(a, b, k).DuplicatorWins();
      EXPECT_TRUE(!prev_spoiler_wins || spoiler_wins)
          << trial << " k=" << k;
      prev_spoiler_wins = spoiler_wins;
    }
  }
}

TEST(PebbleGame, OddCycleVersusEdge) {
  Structure c5 = CycleGraph(5);
  Structure k2 = CliqueGraph(2);
  // The 2-pebble game cannot tell C5 from a 2-colorable graph: C5 is
  // arc-consistent with respect to K2.
  EXPECT_TRUE(PebbleGame(c5, k2, 2).DuplicatorWins());
  // Three pebbles expose the odd cycle (treewidth of C5 is 2, so the
  // 3-pebble game is exact on it — and no homomorphism exists).
  EXPECT_FALSE(PebbleGame(c5, k2, 3).DuplicatorWins());
}

TEST(PebbleGame, ExactOnInputsOfSmallTreewidth) {
  // Completeness (Kolaitis-Vardi): if treewidth(A) < k, the Duplicator
  // wins the k-pebble game iff a homomorphism exists.
  Rng rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    Structure a = RandomTreewidthDigraph(6, 2, 0.8, &rng);
    ASSERT_LE(ExactTreewidth(GaifmanGraph(a)), 2);
    Structure b = RandomDigraph(3, 0.45, &rng, /*allow_loops=*/true);
    PebbleGame game(a, b, 3);
    EXPECT_EQ(game.DuplicatorWins(), FindHomomorphism(a, b).has_value())
        << trial;
  }
}

TEST(PebbleGame, LargestStrategyIsDownwardClosed) {
  Rng rng(29);
  Structure a = RandomDigraph(4, 0.4, &rng);
  Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  PebbleGame game(a, b, 2);
  for (const PartialHom& f : game.LargestWinningStrategy()) {
    for (std::size_t i = 0; i < f.size(); ++i) {
      PartialHom sub = f;
      sub.erase(sub.begin() + static_cast<std::ptrdiff_t>(i));
      EXPECT_TRUE(game.InLargestStrategy(sub));
    }
  }
}

TEST(PebbleGame, LargestStrategyHasForthProperty) {
  Rng rng(31);
  Structure a = RandomDigraph(4, 0.4, &rng);
  Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  PebbleGame game(a, b, 2);
  for (const PartialHom& f : game.LargestWinningStrategy()) {
    if (static_cast<int>(f.size()) >= game.k()) continue;
    for (int elem = 0; elem < a.domain_size(); ++elem) {
      bool in_dom = false;
      for (const auto& [x, y] : f) {
        if (x == elem) in_dom = true;
      }
      if (in_dom) continue;
      bool extendable = false;
      for (int val = 0; val < b.domain_size(); ++val) {
        PartialHom g = f;
        g.push_back({elem, val});
        std::sort(g.begin(), g.end());
        if (game.InLargestStrategy(g)) {
          extendable = true;
          break;
        }
      }
      EXPECT_TRUE(extendable);
    }
  }
}

TEST(PebbleGame, WinningConfigurationHandlesRepeats) {
  Structure a = PathGraph(3);
  Structure b = CliqueGraph(2);
  PebbleGame game(a, b, 2);
  // (0,0) -> (1,1): repeated element consistently mapped.
  EXPECT_TRUE(game.IsWinningConfiguration({0, 0}, {1, 1}));
  // (0,0) -> (1,0): not a function.
  EXPECT_FALSE(game.IsWinningConfiguration({0, 0}, {1, 0}));
  // (0,1) -> (1,1): adjacent elements to the same clique vertex.
  EXPECT_FALSE(game.IsWinningConfiguration({0, 1}, {1, 1}));
}

TEST(PebbleGame, EmptyTemplateLosesUnlessEmptyInput) {
  Structure a(GraphVocabulary(), 2);
  Structure b(GraphVocabulary(), 0);
  EXPECT_FALSE(PebbleGame(a, b, 2).DuplicatorWins());
  Structure empty_a(GraphVocabulary(), 0);
  EXPECT_TRUE(PebbleGame(empty_a, b, 2).DuplicatorWins());
}

TEST(PebbleGame, UniverseSizeGrowsWithK) {
  Structure a = CycleGraph(5);
  Structure b = CliqueGraph(3);
  PebbleGame g1(a, b, 1), g2(a, b, 2), g3(a, b, 3);
  EXPECT_LT(g1.UniverseSize(), g2.UniverseSize());
  EXPECT_LT(g2.UniverseSize(), g3.UniverseSize());
}

TEST(PebbleGame, IdOfRejectsNonHomomorphisms) {
  Structure a = PathGraph(2);
  Structure b(GraphVocabulary(), 2);  // edgeless
  PebbleGame game(a, b, 2);
  // Mapping both endpoints of an edge anywhere fails: B has no edges.
  EXPECT_EQ(game.IdOf({{0, 0}, {1, 1}}), -1);
  EXPECT_GE(game.IdOf({{0, 0}}), 0);
}

TEST(PebbleGame, WinningStrategiesTransportBoundedTreewidthHoms) {
  // The Proposition 4.3 / Corollary 4.4 phenomenon in executable form:
  // existential-positive k-variable properties are preserved by
  // Duplicator wins. Boolean queries phi_C for C of treewidth < k are
  // such properties, so: hom(C, A) and Duplicator-wins-k(A, B) imply
  // hom(C, B).
  Rng rng(307);
  int exercised = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Structure c = RandomTreewidthDigraph(4, 1, 0.9, &rng);  // tw <= 1
    Structure a = RandomDigraph(4, 0.45, &rng, /*allow_loops=*/true);
    Structure b = RandomDigraph(3, 0.45, &rng, /*allow_loops=*/true);
    if (!PebbleGame(a, b, 2).DuplicatorWins()) continue;
    if (!FindHomomorphism(c, a).has_value()) continue;
    ++exercised;
    EXPECT_TRUE(FindHomomorphism(c, b).has_value()) << trial;
  }
  EXPECT_GT(exercised, 0);
}

TEST(ForthProperty, MatchesDefinitionOnExamples) {
  // C5 vs K2: every 1-element partial hom extends (2-forth holds), and
  // the family of 2-element partial homs also extends to any third
  // element? Path consistency on C5/K2 in fact holds family-wise; the
  // *game* (which requires a coherent strategy) is what fails at k=3.
  Structure c5 = CycleGraph(5);
  Structure k2 = CliqueGraph(2);
  EXPECT_TRUE(HasIForthProperty(c5, k2, 2));
  EXPECT_TRUE(PairIsStronglyKConsistent(c5, k2, 2));
}

TEST(ForthProperty, FailsWhenValueMissing) {
  // A = single edge, B = one isolated vertex (no edges): the empty map
  // cannot be extended... it can (any element maps to the vertex), but a
  // 1-element map on an edge endpoint cannot extend to the other
  // endpoint.
  Structure a = PathGraph(2);
  Structure b(GraphVocabulary(), 1);
  EXPECT_TRUE(HasIForthProperty(a, b, 1));
  EXPECT_FALSE(HasIForthProperty(a, b, 2));
  EXPECT_FALSE(PairIsStronglyKConsistent(a, b, 2));
}

}  // namespace
}  // namespace cspdb
