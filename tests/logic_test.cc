// Tests for the bounded-variable formula machinery of Proposition 6.1:
// building phi_A in ∃FO^{w+1} from a width-w tree decomposition and
// evaluating it in polynomial time (Theorem 6.2's proof, executably).

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "gen/generators.h"
#include "logic/bounded_formula.h"
#include "relational/homomorphism.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(BoundedFormula, BuildersAndPrinting) {
  Vocabulary voc = GraphVocabulary();
  BoundedFormula atom = BoundedFormula::Atom(0, {0, 1});
  EXPECT_EQ(atom.ToString(voc), "E(x0,x1)");
  BoundedFormula f = BoundedFormula::Exists(
      1, BoundedFormula::And({atom, BoundedFormula::Atom(0, {1, 0})}));
  EXPECT_EQ(f.ToString(voc), "Ex1.(E(x0,x1) & E(x1,x0))");
  EXPECT_EQ(f.RegisterCount(), 2);
  BoundedFormula truth = BoundedFormula::And({});
  EXPECT_EQ(truth.ToString(voc), "true");
  EXPECT_EQ(truth.RegisterCount(), 0);
}

TEST(BoundedFormula, RegisterBudgetMatchesWidth) {
  // A path has treewidth 1: the formula uses two registers however long
  // the path is.
  Structure path = PathGraph(8);
  BoundedFormula f = FormulaForStructure(path);
  EXPECT_LE(f.RegisterCount(), 2);
  // C5 has treewidth 2: three registers suffice.
  BoundedFormula c5 = FormulaForStructure(CycleGraph(5));
  EXPECT_LE(c5.RegisterCount(), 3);
}

TEST(BoundedFormula, SentenceEquivalentToHomomorphism) {
  Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    Structure a = RandomTreewidthDigraph(6, 2, 0.8, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    BoundedFormula phi = FormulaFromTreeDecomposition(
        a, MinFillDecomposition(GaifmanGraph(a)));
    EXPECT_EQ(EvaluateSentence(phi, b), FindHomomorphism(a, b).has_value())
        << trial;
  }
}

TEST(BoundedFormula, ClassicExamples) {
  Structure k2 = CliqueGraph(2);
  Structure k3 = CliqueGraph(3);
  BoundedFormula odd = FormulaForStructure(CycleGraph(5));
  EXPECT_FALSE(EvaluateSentence(odd, k2));
  EXPECT_TRUE(EvaluateSentence(odd, k3));
  BoundedFormula even = FormulaForStructure(CycleGraph(6));
  EXPECT_TRUE(EvaluateSentence(even, k2));
}

TEST(BoundedFormula, EmptyTemplate) {
  Structure a = PathGraph(2);
  Structure empty(GraphVocabulary(), 0);
  BoundedFormula phi = FormulaForStructure(a);
  EXPECT_FALSE(EvaluateSentence(phi, empty));
  // Isolated-vertex structure: still needs a nonempty template.
  Structure isolated(GraphVocabulary(), 2);
  BoundedFormula iso_phi = FormulaForStructure(isolated);
  EXPECT_FALSE(EvaluateSentence(iso_phi, empty));
  EXPECT_TRUE(EvaluateSentence(iso_phi, CliqueGraph(1)));
}

TEST(BoundedFormula, EmptyStructureIsTrue) {
  Structure a(GraphVocabulary(), 0);
  BoundedFormula phi = FormulaForStructure(a);
  EXPECT_TRUE(EvaluateSentence(phi, CliqueGraph(2)));
  EXPECT_TRUE(EvaluateSentence(phi, Structure(GraphVocabulary(), 0)));
}

TEST(BoundedFormula, TernaryVocabulary) {
  Vocabulary voc;
  voc.AddSymbol("R", 3);
  Rng rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    // Chain of ternary tuples: treewidth 2.
    Structure a(voc, 6);
    a.AddTuple(0, {0, 1, 2});
    a.AddTuple(0, {2, 3, 4});
    a.AddTuple(0, {4, 5, 0});
    Structure b(voc, 2);
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        for (int z = 0; z < 2; ++z) {
          if (rng.Bernoulli(0.6)) b.AddTuple(0, {x, y, z});
        }
      }
    }
    BoundedFormula phi = FormulaForStructure(a);
    EXPECT_EQ(EvaluateSentence(phi, b), FindHomomorphism(a, b).has_value())
        << trial;
  }
}

TEST(BoundedFormula, LoopsAndRepeatedArguments) {
  Structure a(GraphVocabulary(), 2);
  a.AddTuple(0, {0, 0});  // loop
  a.AddTuple(0, {0, 1});
  Structure no_loop = CliqueGraph(2);
  Structure with_loop = MakeUndirectedGraph(2, {{0, 0}, {0, 1}});
  BoundedFormula phi = FormulaForStructure(a);
  EXPECT_FALSE(EvaluateSentence(phi, no_loop));
  EXPECT_TRUE(EvaluateSentence(phi, with_loop));
}

}  // namespace
}  // namespace cspdb
