// End-to-end loopback tests for the networked serving tier: a real
// NetServer on a real socket, driven by the blocking client. Covers the
// single-node round trip, protocol-error handling, graceful shutdown,
// and the ISSUE 10 acceptance differential: a two-node consistent-hash
// cluster serves the Zipfian replay byte-identically to single-node
// in-process serving, with a nonzero remote hit rate.

#include <cstdint>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "net/client.h"
#include "net/server.h"
#include "net/shard.h"
#include "net/wire.h"
#include "service/server.h"
#include "service/workload.h"

namespace cspdb::net {
namespace {

using service::CspdbService;
using service::Response;
using service::ServiceOptions;
using service::ServiceRequest;
using service::StatusCode;

/// Deterministic-ish port base that differs between concurrent CI jobs
/// (same binary, different pids) to dodge bind collisions; StartCluster
/// retries on higher offsets if a port is genuinely taken.
int PortBase() { return 21000 + static_cast<int>(getpid() % 20000); }

std::vector<ServiceRequest> ZipfStream(int n) {
  service::WorkloadOptions options;
  options.seed = 11;
  options.num_requests = n;
  options.pool_size = 8;
  options.zipf_s = 1.1;
  options.mutation_prob = 0.05;
  // Keep instances small: this test runs under ASan/TSan in CI.
  options.csp_variables = 8;
  options.csp_constraints = 10;
  options.db_nodes = 8;
  return service::GenerateRequestStream(options);
}

/// One in-process cluster node: its own worker pool (nodes must not
/// share one — node A's routed request blocks a pool thread until node B
/// answers, which needs B's own threads), service, router, and server.
struct Node {
  explicit Node(int pool_threads) : pool(pool_threads) {
    ServiceOptions options;
    options.pool = &pool;
    service = std::make_unique<CspdbService>(options);
  }

  exec::ThreadPool pool;
  std::unique_ptr<CspdbService> service;
  std::unique_ptr<ShardRouter> router;
  std::unique_ptr<NetServer> server;
};

/// Starts `n` nodes on consecutive ports, clustered over each other.
/// Returns empty on repeated bind failure (ports taken).
std::vector<std::unique_ptr<Node>> StartCluster(int n) {
  for (int attempt = 0; attempt < 5; ++attempt) {
    const int base = PortBase() + attempt * n;
    std::vector<std::string> addresses;
    for (int i = 0; i < n; ++i) {
      addresses.push_back("127.0.0.1:" + std::to_string(base + i));
    }
    std::vector<PeerId> members;
    for (const std::string& address : addresses) members.push_back({address});

    std::vector<std::unique_ptr<Node>> nodes;
    bool ok = true;
    for (int i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>(2);
      node->router = std::make_unique<ShardRouter>(node->service.get(),
                                                   addresses[i], members);
      ServerOptions server_options;
      server_options.listen_address = addresses[i];
      server_options.pool = &node->pool;
      node->server =
          std::make_unique<NetServer>(node->service.get(), server_options);
      node->server->set_router(node->router.get());
      std::string error;
      if (!node->server->Start(&error)) {
        ok = false;
        break;
      }
      nodes.push_back(std::move(node));
    }
    if (ok) return nodes;
  }
  return {};
}

TEST(NetLoopback, SingleNodeRoundTripMatchesLocalService) {
  exec::ThreadPool pool(2);
  ServiceOptions service_options;
  service_options.pool = &pool;
  CspdbService service(service_options);
  ServerOptions server_options;
  server_options.pool = &pool;
  NetServer server(&service, server_options);  // default: 127.0.0.1:0
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  CspdbService reference;  // independent local truth
  std::unique_ptr<Connection> conn =
      Connection::Dial(server.address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;
  ASSERT_TRUE(conn->Ping(77, 2000, &error)) << error;

  const std::vector<ServiceRequest> stream = ZipfStream(30);
  uint64_t id = 1;
  for (const ServiceRequest& request : stream) {
    std::optional<Response> remote =
        conn->Call(request, id++, 0, 10000, &error);
    ASSERT_TRUE(remote.has_value()) << error;
    EXPECT_EQ(remote->status, StatusCode::kOk);
    const Response local = reference.Handle(request);
    EXPECT_EQ(AnswerBytes(*remote), AnswerBytes(local));
  }
  server.Shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 0);
  EXPECT_EQ(stats.requests_dispatched,
            static_cast<int64_t>(stream.size()));
  EXPECT_GE(stats.pings, 1);
}

TEST(NetLoopback, MalformedStreamGetsErrorFrameAndClose) {
  exec::ThreadPool pool(2);
  ServiceOptions service_options;
  service_options.pool = &pool;
  CspdbService service(service_options);
  ServerOptions server_options;
  server_options.pool = &pool;
  NetServer server(&service, server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::unique_ptr<Connection> conn =
      Connection::Dial(server.address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;
  const std::vector<uint8_t> garbage = {0xde, 0xad, 0xbe, 0xef, 0xde, 0xad,
                                        0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef,
                                        0xde, 0xad, 0xbe, 0xef, 0xde, 0xad,
                                        0xbe, 0xef};
  ASSERT_TRUE(conn->SendBytes(garbage.data(), garbage.size(), &error));
  std::optional<Frame> reply = conn->ReadFrame(2000, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, FrameType::kError);
  std::string decode_error;
  std::optional<std::string> message = DecodeErrorPayload(
      reply->payload.data(), reply->payload.size(), &decode_error);
  ASSERT_TRUE(message.has_value()) << decode_error;
  EXPECT_NE(message->find("magic"), std::string::npos) << *message;
  // The server closes after the error frame.
  EXPECT_FALSE(conn->ReadFrame(2000, &error).has_value());
  server.Shutdown();
  EXPECT_EQ(server.stats().protocol_errors, 1);
}

TEST(NetLoopback, BadRequestPayloadIsRejectedNotAborted) {
  // A syntactically valid frame whose payload names variable 5 of 3:
  // the semantic validator must catch it (the engine constructor would
  // CSPDB_CHECK-abort the process).
  exec::ThreadPool pool(2);
  ServiceOptions service_options;
  service_options.pool = &pool;
  CspdbService service(service_options);
  ServerOptions server_options;
  server_options.pool = &pool;
  NetServer server(&service, server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::unique_ptr<Connection> conn =
      Connection::Dial(server.address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 9;
  auto u32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      frame.payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  frame.payload.push_back(0);  // kSolveCsp
  u32(3);                      // num_variables
  u32(2);                      // num_values
  u32(1);                      // one constraint
  u32(1);                      // scope length 1
  u32(5);                      // variable 5: out of range
  u32(0);                      // no tuples
  std::vector<uint8_t> bytes;
  AppendFrame(frame, &bytes);
  ASSERT_TRUE(conn->SendBytes(bytes.data(), bytes.size(), &error));
  std::optional<Frame> reply = conn->ReadFrame(2000, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, FrameType::kError);
  EXPECT_EQ(reply->request_id, 9u);
  server.Shutdown();
}

TEST(NetLoopback, TwoNodeClusterIsByteIdenticalWithRemoteHits) {
  std::vector<std::unique_ptr<Node>> nodes = StartCluster(2);
  ASSERT_EQ(nodes.size(), 2u) << "could not bind loopback ports";

  CspdbService reference;  // single-node truth
  std::string error;
  std::unique_ptr<Connection> conn =
      Connection::Dial(nodes[0]->server->address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;

  const std::vector<ServiceRequest> stream = ZipfStream(120);
  uint64_t id = 1;
  for (const ServiceRequest& request : stream) {
    std::optional<Response> remote =
        conn->Call(request, id++, 0, 20000, &error);
    ASSERT_TRUE(remote.has_value()) << error;
    ASSERT_EQ(remote->status, StatusCode::kOk);
    const Response local = reference.Handle(request);
    // The acceptance differential: byte-identical to single-node mode,
    // whichever node/cache/engine produced the answer.
    ASSERT_EQ(AnswerBytes(*remote), AnswerBytes(local));
  }

  const RouterStats a = nodes[0]->router->stats();
  // The Zipfian stream repeats fingerprints; the half owned by node B is
  // cached there after its first consult, so repeats become remote hits.
  EXPECT_GT(a.remote_hits, 0) << "no remote cache hits: sharding inert";
  EXPECT_GT(a.local_hits + a.remote_hits + a.remote_compute + a.local_compute,
            0);
  for (auto& node : nodes) node->server->Shutdown();
}

TEST(NetLoopback, DeadPeerDegradesToLocalCompute) {
  // One live node clustered with an address nobody listens on: every
  // request still gets a correct answer, with peer failures recorded.
  const int dead_port = PortBase() + 997;
  auto node = std::make_unique<Node>(2);
  const std::string dead = "127.0.0.1:" + std::to_string(dead_port);
  for (int attempt = 0; attempt < 5; ++attempt) {
    const std::string self =
        "127.0.0.1:" + std::to_string(PortBase() + 600 + attempt);
    node->router = std::make_unique<ShardRouter>(node->service.get(), self,
                                                 std::vector<PeerId>{
                                                     {self}, {dead}});
    ServerOptions server_options;
    server_options.listen_address = self;
    server_options.pool = &node->pool;
    node->server =
        std::make_unique<NetServer>(node->service.get(), server_options);
    node->server->set_router(node->router.get());
    std::string error;
    if (node->server->Start(&error)) break;
    node->server.reset();
  }
  ASSERT_NE(node->server, nullptr) << "could not bind a loopback port";

  CspdbService reference;
  std::string error;
  std::unique_ptr<Connection> conn =
      Connection::Dial(node->server->address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;
  const std::vector<ServiceRequest> stream = ZipfStream(40);
  uint64_t id = 1;
  for (const ServiceRequest& request : stream) {
    std::optional<Response> remote =
        conn->Call(request, id++, 0, 20000, &error);
    ASSERT_TRUE(remote.has_value()) << error;
    ASSERT_EQ(remote->status, StatusCode::kOk);
    const Response local = reference.Handle(request);
    ASSERT_EQ(AnswerBytes(*remote), AnswerBytes(local));
  }
  const RouterStats stats = node->router->stats();
  EXPECT_GT(stats.peer_failures, 0);
  EXPECT_EQ(stats.remote_hits, 0);
  node->server->Shutdown();
}

TEST(NetLoopback, ShutdownDrainsInFlightRequests) {
  exec::ThreadPool pool(2);
  ServiceOptions service_options;
  service_options.pool = &pool;
  CspdbService service(service_options);
  ServerOptions server_options;
  server_options.pool = &pool;
  NetServer server(&service, server_options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  std::unique_ptr<Connection> conn =
      Connection::Dial(server.address(), 2000, &error);
  ASSERT_NE(conn, nullptr) << error;
  // Write a request, then immediately shut down: the drain must let the
  // in-flight response finish and flush before the connection closes.
  const ServiceRequest request = ZipfStream(1).front();
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 1;
  EncodeRequestPayload(request, &frame.payload);
  std::vector<uint8_t> bytes;
  AppendFrame(frame, &bytes);
  ASSERT_TRUE(conn->SendBytes(bytes.data(), bytes.size(), &error));
  std::optional<Frame> reply;
  std::thread reader([&] { reply = conn->ReadFrame(10000, &error); });
  server.Shutdown();
  reader.join();
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(reply->type, FrameType::kResponse);
}

}  // namespace
}  // namespace cspdb::net
