// Tests for Section 7: view-based query answering via the constraint
// template (Theorem 7.5), the CSP-to-views reduction (Theorem 7.3), and
// maximal RPQ rewritings.

#include <gtest/gtest.h>

#include <algorithm>

#include "boolean/hell_nesetril.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "views/certain_answers.h"
#include "views/constraint_template.h"
#include "views/csp_to_views.h"
#include "views/rewriting.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// A simple setting: alphabet {a, b}, query a.b, views V0 = a, V1 = b.
ViewSetting AbSetting() {
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("ab", setting.alphabet);
  return setting;
}

TEST(CertainAnswers, ChainOfViews) {
  ViewSetting setting = AbSetting();
  ViewInstance instance;
  instance.num_objects = 3;
  instance.ext = {{{0, 1}}, {{1, 2}}};  // V0: 0->1, V1: 1->2
  // Every consistent DB has an a-edge 0->1 and a b-edge 1->2 (single
  // symbol views force real edges), so (0,2) is certain.
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 2));
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 1));
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 2, 0));
}

TEST(CertainAnswers, DisjunctiveViewIsNotCertain) {
  // View V0 = a|b: knowing (0,1) in ext(V0) does not determine which
  // label, so the query "a" is not certain.
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a|b", setting.alphabet)});
  setting.query = ParseRegex("a", setting.alphabet);
  ViewInstance instance;
  instance.num_objects = 2;
  instance.ext = {{{0, 1}}};
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 1));
  // But the query a|b is certain.
  setting.query = ParseRegex("a|b", setting.alphabet);
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 1));
}

TEST(CertainAnswers, StarViewYieldsStarCertainty) {
  // V0 = a+; query a*. An ext pair guarantees a nonempty a-path.
  ViewSetting setting;
  setting.alphabet = {"a"};
  setting.views.push_back({"V0", ParseRegex("a+", setting.alphabet)});
  setting.query = ParseRegex("a*", setting.alphabet);
  ViewInstance instance;
  instance.num_objects = 2;
  instance.ext = {{{0, 1}}};
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 1));
  // The reverse pair is not certain.
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 1, 0));
  // Query "a" (exactly one step) is not certain: the path may be longer.
  setting.query = ParseRegex("a", setting.alphabet);
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 1));
}

TEST(CertainAnswers, DiagonalIsAlwaysCertainForStarQueries) {
  ViewSetting setting = AbSetting();
  setting.query = ParseRegex("(a|b)*", setting.alphabet);
  ViewInstance instance;
  instance.num_objects = 2;
  instance.ext = {{}, {}};
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 0));
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 1));
}

TEST(CertainAnswers, BruteForceAgreesOnSmallInstances) {
  Rng rng(5);
  ViewSetting setting = AbSetting();
  for (int trial = 0; trial < 10; ++trial) {
    ViewInstance instance;
    instance.num_objects = 3;
    instance.ext.resize(2);
    for (int i = 0; i < 2; ++i) {
      int edges = rng.UniformInt(0, 2);
      for (int e = 0; e < edges; ++e) {
        instance.ext[i].push_back({rng.UniformInt(0, 2),
                                   rng.UniformInt(0, 2)});
      }
    }
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        bool via_csp = CertainAnswerViaCsp(setting, instance, c, d);
        bool brute =
            CertainAnswerBruteForce(setting, instance, c, d, 3);
        EXPECT_EQ(via_csp, brute)
            << trial << " c=" << c << " d=" << d;
      }
    }
  }
}

TEST(CertainAnswers, BruteForceAgreesWithDisjunctiveViews) {
  Rng rng(7);
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a|b", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("ab", setting.alphabet)});
  setting.query = ParseRegex("ab|b", setting.alphabet);
  for (int trial = 0; trial < 8; ++trial) {
    ViewInstance instance;
    instance.num_objects = 3;
    instance.ext.resize(2);
    for (int i = 0; i < 2; ++i) {
      int edges = rng.UniformInt(0, 2);
      for (int e = 0; e < edges; ++e) {
        instance.ext[i].push_back({rng.UniformInt(0, 2),
                                   rng.UniformInt(0, 2)});
      }
    }
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(CertainAnswerViaCsp(setting, instance, c, d),
                  CertainAnswerBruteForce(setting, instance, c, d, 4))
            << trial << " c=" << c << " d=" << d;
      }
    }
  }
}

TEST(Theorem73, ReductionMatchesHomomorphismExistence) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomDigraph(3, 0.5, &rng);
    Structure b = RandomDigraph(2, 0.5, &rng, /*allow_loops=*/true);
    CspToViewsReduction red = ReduceCspToViewAnswering(a, b);
    bool not_certain =
        !CertainAnswerViaCsp(red.setting, red.instance, red.c, red.d);
    EXPECT_EQ(not_certain, FindHomomorphism(a, b).has_value()) << trial;
  }
}

TEST(Theorem73, TwoColoringInstance) {
  // K2 template: (c,d) not certain iff the input graph is 2-colorable.
  // (Larger templates work too but the powerset domain of the reduction's
  // query automaton grows quickly; the random sweep above covers m = 2.)
  Structure b = CliqueGraph(2);
  Structure a_yes = CycleGraph(4);  // 2-colorable
  Structure a_no = CycleGraph(3);   // odd cycle
  CspToViewsReduction red_yes = ReduceCspToViewAnswering(a_yes, b);
  EXPECT_FALSE(CertainAnswerViaCsp(red_yes.setting, red_yes.instance,
                                   red_yes.c, red_yes.d));
  CspToViewsReduction red_no = ReduceCspToViewAnswering(a_no, b);
  EXPECT_TRUE(CertainAnswerViaCsp(red_no.setting, red_no.instance,
                                  red_no.c, red_no.d));
}

TEST(Theorem73, EmptyTemplate) {
  Structure a(GraphVocabulary(), 2);
  a.AddTuple(0, {0, 1});
  Structure b(GraphVocabulary(), 0);
  CspToViewsReduction red = ReduceCspToViewAnswering(a, b);
  // No homomorphism, so (c,d) must be certain (vacuously: no consistent
  // database exists).
  EXPECT_TRUE(
      CertainAnswerViaCsp(red.setting, red.instance, red.c, red.d));
}

TEST(Rewriting, ClassicAbStarExample) {
  // Q = (ab)*, V = ab: the maximal rewriting is V*.
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V", ParseRegex("ab", setting.alphabet)});
  setting.query = ParseRegex("(ab)*", setting.alphabet);
  Dfa rewriting = MaximalRpqRewriting(setting);
  // Compare with V* over the 1-letter view alphabet.
  Dfa v_star = Determinize(Nfa::FromRegex(ParseRegex("v*", {"v"}), 1));
  EXPECT_TRUE(SameLanguage(rewriting, v_star));
}

TEST(Rewriting, NoRewritingWhenViewsUseless) {
  // Q = a, V = b: no view word expands into L(Q).
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("a", setting.alphabet);
  Dfa rewriting = MaximalRpqRewriting(setting);
  EXPECT_TRUE(rewriting.IsEmpty());
}

TEST(Rewriting, PartialCoverage) {
  // Q = ab|ba, V0 = ab, V1 = a: rewriting contains the word V0 but no
  // word using V1 (a alone never completes into L(Q) via views).
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("ab", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("a", setting.alphabet)});
  setting.query = ParseRegex("ab|ba", setting.alphabet);
  Dfa rewriting = MaximalRpqRewriting(setting);
  EXPECT_TRUE(rewriting.Accepts({0}));       // V0
  EXPECT_FALSE(rewriting.Accepts({1}));      // V1
  EXPECT_FALSE(rewriting.Accepts({1, 0}));   // V1 V0
  EXPECT_FALSE(rewriting.Accepts({}));       // epsilon not in Q
}

TEST(Rewriting, AnswersAreSound) {
  // Rewriting answers must be contained in the certain answers.
  Rng rng(13);
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("ab", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("(ab)*b", setting.alphabet);
  for (int trial = 0; trial < 6; ++trial) {
    ViewInstance instance;
    instance.num_objects = 4;
    instance.ext.resize(2);
    for (int i = 0; i < 2; ++i) {
      int edges = rng.UniformInt(1, 3);
      for (int e = 0; e < edges; ++e) {
        instance.ext[i].push_back({rng.UniformInt(0, 3),
                                   rng.UniformInt(0, 3)});
      }
    }
    std::vector<std::pair<int, int>> rewritten =
        RewritingAnswers(setting, instance);
    std::vector<std::pair<int, int>> certain =
        CertainAnswers(setting, instance);
    for (const auto& pair : rewritten) {
      EXPECT_TRUE(std::find(certain.begin(), certain.end(), pair) !=
                  certain.end())
          << trial << " pair=(" << pair.first << "," << pair.second << ")";
    }
  }
}

TEST(ConstraintTemplate, DomainIsPowerset) {
  ViewSetting setting = AbSetting();
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  EXPECT_EQ(tmpl.b.domain_size(), 1 << tmpl.query_dfa.num_states);
  EXPECT_GE(tmpl.b.vocabulary().IndexOf("U_c"), 0);
  EXPECT_GE(tmpl.b.vocabulary().IndexOf("U_d"), 0);
}

}  // namespace
}  // namespace cspdb
