// Larger randomized cross-checks: every complete solver and every
// encoding in the library run against each other on the same instances.

#include <gtest/gtest.h>

#include <tuple>

#include "csp/backjump_solver.h"
#include "csp/dual_encoding.h"
#include "csp/microstructure.h"
#include "csp/sat_encoding.h"
#include "csp/solver.h"
#include "db/algebra.h"
#include "gen/generators.h"
#include "treewidth/counting.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

class EverySolver : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(EverySolver, AgreeOnRandomBinaryInstances) {
  auto [seed, tightness_pct] = GetParam();
  Rng rng(seed);
  CspInstance csp =
      RandomBinaryCsp(7, 3, 11, tightness_pct / 100.0, &rng);

  bool mac = BacktrackingSolver(csp).Solve().has_value();
  EXPECT_EQ(mac, BackjumpSolver(csp).Solve().has_value());
  EXPECT_EQ(mac, SolveViaSat(csp).has_value());
  EXPECT_EQ(mac, SolveViaDual(csp).has_value());
  EXPECT_EQ(mac, SolveViaHiddenVariables(csp).has_value());
  EXPECT_EQ(mac, SolveViaMicrostructureClique(csp).has_value());
  EXPECT_EQ(mac, SolveWithHypertreeHeuristic(csp).has_value());
  EXPECT_EQ(mac, SolvableByJoin(csp));
  // Counting is consistent with decision.
  int64_t count = CountSolutionsWithTreewidthHeuristic(csp);
  EXPECT_EQ(mac, count > 0);
  BacktrackingSolver counter(csp);
  EXPECT_EQ(count, counter.CountSolutions());
}

INSTANTIATE_TEST_SUITE_P(Sweep, EverySolver,
                         ::testing::Combine(::testing::Range(9000, 9008),
                                            ::testing::Values(30, 50,
                                                              70)));

TEST(EverySolverEdge, SharedScopesAndUnaryMix) {
  // A deliberately messy instance: repeated scopes (consolidation),
  // repeated variables in a scope, unary constraints.
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp(5, 3);
    csp.AddConstraint({0, 1}, {{0, 1}, {1, 2}, {2, 0}, {1, 0}});
    csp.AddConstraint({0, 1}, {{0, 1}, {1, 2}, {1, 0}});  // intersects
    csp.AddConstraint({2, 2, 3},
                      {{0, 0, 1}, {1, 1, 0}, {0, 1, 2}});  // repeat var
    csp.AddConstraint({4}, {{rng.UniformInt(0, 2)}});
    csp.AddConstraint({3, 4}, {{0, 0}, {1, 1}, {2, 2}, {1, 0}, {0, 1},
                               {2, 1}});

    bool mac = BacktrackingSolver(csp).Solve().has_value();
    EXPECT_EQ(mac, SolveViaSat(csp).has_value()) << trial;
    EXPECT_EQ(mac, SolveViaDual(csp).has_value()) << trial;
    EXPECT_EQ(mac, SolveViaHiddenVariables(csp).has_value()) << trial;
    EXPECT_EQ(mac, SolvableByJoin(csp)) << trial;
    BacktrackingSolver counter(csp);
    EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(csp),
              counter.CountSolutions())
        << trial;
  }
}

}  // namespace
}  // namespace cspdb
