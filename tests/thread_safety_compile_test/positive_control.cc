// Positive control for the negative-compile harness: correct use of
// every annotation exercised by the violation fixtures. Built as part of
// the normal tree whenever CSPDB_THREAD_SAFETY is ON, so if this file
// stops compiling the harness is broken outright — and the WILL_FAIL
// tests next door can't pass vacuously because the macros went stale.

#include <cstdint>

#include "util/sync.h"

namespace cspdb::ts_compile_test {

class Account {
 public:
  // Correct: guarded fields accessed under the RAII guard.
  void Deposit(int64_t amount) {
    util::MutexLock lock(mu_);
    balance_ += amount;
    DepositLocked(amount);
  }

  // Correct: REQUIRES helper called with the lock held (above), and the
  // annotation lets it touch the guarded field directly.
  void DepositLocked(int64_t amount) CSPDB_REQUIRES(mu_) {
    history_ += amount;
  }

  int64_t Read() const {
    util::MutexLock lock(mu_);
    return balance_;
  }

  // Correct: shared data readable under a reader lock.
  int64_t PeekLimit() const {
    util::ReaderLock lock(limit_mu_);
    return limit_;
  }

  void SetLimit(int64_t limit) {
    util::MutexLock lock(limit_mu_);
    limit_ = limit;
  }

  // Correct: condition-variable loop in the call-site style sync.h
  // prescribes (the enclosing scope holds the capability).
  void AwaitPositive() {
    util::MutexLock lock(mu_);
    while (balance_ <= 0) cv_.Wait(mu_);
  }

 private:
  mutable util::Mutex mu_;
  util::CondVar cv_;
  int64_t balance_ CSPDB_GUARDED_BY(mu_) = 0;
  int64_t history_ CSPDB_GUARDED_BY(mu_) = 0;

  mutable util::SharedMutex limit_mu_;
  int64_t limit_ CSPDB_GUARDED_BY(limit_mu_) = 0;
};

// Odr-use everything so the control object file is not vacuously empty.
int64_t Exercise() {
  Account account;
  account.Deposit(3);
  account.SetLimit(7);
  return account.Read() + account.PeekLimit();
}

}  // namespace cspdb::ts_compile_test
