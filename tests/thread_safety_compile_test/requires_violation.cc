// Negative-compile fixture: calls a CSPDB_REQUIRES helper without
// holding the required mutex. Under -DCSPDB_THREAD_SAFETY=ON (Clang,
// -Werror=thread-safety) this file MUST fail to compile (WILL_FAIL
// test in the CMake driver).

#include <cstdint>

#include "util/sync.h"

namespace cspdb::ts_compile_test {

class Account {
 public:
  void DepositLocked(int64_t amount) CSPDB_REQUIRES(mu_) {
    balance_ += amount;
  }

  void Deposit(int64_t amount) {
    DepositLocked(amount);  // BUG: mu_ not held -> -Wthread-safety error
  }

 private:
  util::Mutex mu_;
  int64_t balance_ CSPDB_GUARDED_BY(mu_) = 0;
};

int64_t Exercise() {
  Account account;
  account.Deposit(1);
  return 0;
}

}  // namespace cspdb::ts_compile_test
