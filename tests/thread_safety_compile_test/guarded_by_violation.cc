// Negative-compile fixture: writes a CSPDB_GUARDED_BY field without
// holding its mutex. Under -DCSPDB_THREAD_SAFETY=ON (Clang,
// -Werror=thread-safety) this file MUST fail to compile — the CMake
// driver registers the build as a WILL_FAIL test. Apart from the
// locking bug it is valid C++, so a compiler without the analysis
// accepts it; that is exactly what the harness gate exists to catch.

#include <cstdint>

#include "util/sync.h"

namespace cspdb::ts_compile_test {

class Account {
 public:
  void DepositUnlocked(int64_t amount) {
    balance_ += amount;  // BUG: mu_ not held -> -Wthread-safety error
  }

 private:
  util::Mutex mu_;
  int64_t balance_ CSPDB_GUARDED_BY(mu_) = 0;
};

int64_t Exercise() {
  Account account;
  account.DepositUnlocked(1);
  return 0;
}

}  // namespace cspdb::ts_compile_test
