// Tests for Section 6: Gaifman graphs, tree decompositions, exact
// treewidth, elimination heuristics, and the bounded-treewidth solver
// (Theorem 6.2 via bucket elimination).

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/tree_decomposition.h"
#include "util/rng.h"

namespace cspdb {
namespace {

Graph PathGraphG(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1);
  return g;
}

Graph CycleGraphG(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) g.AddEdge(i, (i + 1) % n);
  return g;
}

Graph CliqueGraphG(int n) {
  Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j);
  }
  return g;
}

TEST(Gaifman, StructureTuplesBecomeCliques) {
  Vocabulary voc;
  voc.AddSymbol("R", 3);
  Structure s(voc, 4);
  s.AddTuple(0, {0, 1, 2});
  Graph g = GaifmanGraph(s);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_EQ(g.NumEdges(), 3);
}

TEST(Gaifman, CspConstraintGraph) {
  CspInstance csp(4, 2);
  csp.AddConstraint({0, 1}, {{0, 0}});
  csp.AddConstraint({1, 2, 3}, {{0, 0, 0}});
  Graph g = GaifmanGraphOfCsp(csp);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_FALSE(g.HasEdge(0, 3));
}

TEST(ExactTreewidth, KnownValues) {
  EXPECT_EQ(ExactTreewidth(PathGraphG(6)), 1);
  EXPECT_EQ(ExactTreewidth(CycleGraphG(6)), 2);
  EXPECT_EQ(ExactTreewidth(CliqueGraphG(5)), 4);
  Graph edgeless(4);
  EXPECT_EQ(ExactTreewidth(edgeless), 0);
  Graph empty(0);
  EXPECT_EQ(ExactTreewidth(empty), -1);
}

TEST(ExactTreewidth, GridGraph) {
  // 3x3 grid has treewidth 3.
  Graph g(9);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      int v = 3 * r + c;
      if (c + 1 < 3) g.AddEdge(v, v + 1);
      if (r + 1 < 3) g.AddEdge(v, v + 3);
    }
  }
  EXPECT_EQ(ExactTreewidth(g), 3);
}

TEST(ExactTreewidth, OptimalOrderingRealizesWidth) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g(8);
    for (int u = 0; u < 8; ++u) {
      for (int v = u + 1; v < 8; ++v) {
        if (rng.Bernoulli(0.3)) g.AddEdge(u, v);
      }
    }
    int tw = ExactTreewidth(g);
    std::vector<int> order = OptimalEliminationOrdering(g);
    EXPECT_EQ(InducedWidth(g, order), tw) << trial;
  }
}

TEST(Heuristics, OrderingsAreSoundUpperBounds) {
  Rng rng(11);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomPartialKTree(10, 3, 0.9, &rng);
    int tw = ExactTreewidth(g);
    EXPECT_LE(tw, 3);
    EXPECT_GE(InducedWidth(g, MinFillOrdering(g)), tw);
    EXPECT_GE(InducedWidth(g, MinDegreeOrdering(g)), tw);
  }
}

TEST(Heuristics, DecompositionFromOrderingIsValid) {
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    Graph g = RandomPartialKTree(9, 2, 0.8, &rng);
    TreeDecomposition td = MinFillDecomposition(g);
    EXPECT_TRUE(IsValidDecomposition(g, td)) << trial;
    EXPECT_EQ(td.Width(), InducedWidth(g, MinFillOrdering(g)));
  }
}

TEST(TreeDecomposition, ValidityChecker) {
  Graph g = PathGraphG(3);
  TreeDecomposition good{{{0, 1}, {1, 2}}, {{0, 1}}};
  EXPECT_TRUE(IsValidDecomposition(g, good));
  // Missing edge coverage.
  TreeDecomposition bad_edges{{{0, 1}, {2}}, {{0, 1}}};
  EXPECT_FALSE(IsValidDecomposition(g, bad_edges));
  // Vertex occurrences not connected: 1 appears in bags 0 and 2 only.
  TreeDecomposition bad_conn{{{0, 1}, {0, 2}, {1, 2}},
                             {{0, 1}, {1, 2}}};
  EXPECT_FALSE(IsValidDecomposition(g, bad_conn));
  // A cycle among tree nodes.
  TreeDecomposition bad_tree{{{0, 1}, {1, 2}, {0, 2}},
                             {{0, 1}, {1, 2}, {2, 0}}};
  EXPECT_FALSE(IsValidDecomposition(g, bad_tree));
}

TEST(TreeDecomposition, StructureFormRequiresTupleCoverage) {
  Vocabulary voc;
  voc.AddSymbol("R", 3);
  Structure s(voc, 3);
  s.AddTuple(0, {0, 1, 2});
  // Bags cover all pairwise Gaifman edges but no bag holds all three.
  TreeDecomposition pairwise{{{0, 1}, {1, 2}, {0, 2}},
                             {{0, 1}, {1, 2}}};
  EXPECT_FALSE(IsValidForStructure(s, pairwise));
  TreeDecomposition full{{{0, 1, 2}}, {}};
  EXPECT_TRUE(IsValidForStructure(s, full));
}

TEST(BucketElimination, MatchesBacktrackingOnRandomInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomTreewidthCsp(8, 2, 3, 0.4, 0.9, &rng);
    BacktrackingSolver solver(csp);
    auto bt = solver.Solve();
    BucketStats stats;
    auto be = SolveWithTreewidthHeuristic(csp, &stats);
    EXPECT_EQ(bt.has_value(), be.has_value()) << trial;
    if (be.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*be));
    }
  }
}

TEST(BucketElimination, WorksOnArbitraryOrderings) {
  Rng rng(19);
  CspInstance csp = RandomBinaryCsp(6, 3, 8, 0.4, &rng);
  std::vector<int> identity{0, 1, 2, 3, 4, 5};
  BacktrackingSolver solver(csp);
  auto bt = solver.Solve();
  auto be = SolveByBucketElimination(csp, identity);
  EXPECT_EQ(bt.has_value(), be.has_value());
}

TEST(BucketElimination, TernaryConstraints) {
  CspInstance csp(4, 2);
  std::vector<Tuple> parity;
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        if ((x ^ y ^ z) == 1) parity.push_back({x, y, z});
      }
    }
  }
  csp.AddConstraint({0, 1, 2}, parity);
  csp.AddConstraint({1, 2, 3}, parity);
  csp.AddConstraint({3}, {{1}});
  BucketStats stats;
  auto solution = SolveWithTreewidthHeuristic(csp, &stats);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(BucketElimination, DetectsUnsolvable) {
  CspInstance csp = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  EXPECT_FALSE(SolveWithTreewidthHeuristic(csp).has_value());
}

TEST(BucketElimination, UnconstrainedVariablesGetValues) {
  CspInstance csp(3, 2);
  csp.AddConstraint({0}, {{1}});
  auto solution = SolveWithTreewidthHeuristic(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 1);
}

TEST(BucketElimination, StatsReflectInducedWidth) {
  Rng rng(23);
  CspInstance csp = RandomTreewidthCsp(10, 2, 3, 0.3, 1.0, &rng);
  BucketStats stats;
  SolveWithTreewidthHeuristic(csp, &stats);
  EXPECT_GE(stats.induced_width, 0);
  EXPECT_LE(stats.induced_width, 4);  // heuristic on a partial 2-tree
}

TEST(BucketElimination, TablesBoundedByInducedWidth) {
  // The Theorem 6.2 complexity claim in executable form: along the
  // heuristic ordering, no intermediate table exceeds d^(w+1).
  Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp = RandomTreewidthCsp(30, 2, 3, 0.3, 0.95, &rng);
    BucketStats stats;
    SolveWithTreewidthHeuristic(csp, &stats);
    ASSERT_GE(stats.induced_width, 0);
    int64_t bound = 1;
    for (int i = 0; i <= stats.induced_width; ++i) bound *= 3;
    EXPECT_LE(stats.max_table_rows, bound) << trial;
  }
}

TEST(Theorem62, BoundedTreewidthFamilySolvedExactly) {
  // CSP(A(k), F): solve homomorphism instances where A has treewidth <=
  // 2 against arbitrary templates, cross-checked with search.
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomTreewidthDigraph(7, 2, 0.8, &rng);
    Structure b = RandomDigraph(3, 0.4, &rng, /*allow_loops=*/true);
    CspInstance csp = ToCspInstance(a, b);
    auto be = SolveWithTreewidthHeuristic(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(be.has_value(), solver.Solve().has_value()) << trial;
  }
}

}  // namespace
}  // namespace cspdb
