// Tests for the DPLL solver, the CSP -> SAT direct encoding, and the
// Simple Temporal Problem substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "boolean/dpll.h"
#include "boolean/hell_nesetril.h"
#include "boolean/horn_sat.h"
#include "boolean/two_sat.h"
#include "csp/convert.h"
#include "csp/sat_encoding.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "temporal/stp.h"
#include "util/rng.h"

namespace cspdb {
namespace {

bool BruteForceSat(const CnfFormula& phi) {
  std::vector<int> a(phi.num_variables);
  for (int code = 0; code < (1 << phi.num_variables); ++code) {
    for (int v = 0; v < phi.num_variables; ++v) a[v] = (code >> v) & 1;
    if (phi.Evaluate(a)) return true;
  }
  return false;
}

TEST(Dpll, MatchesBruteForceOnRandom3Sat) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    CnfFormula phi = RandomKSat(8, rng.UniformInt(10, 40), 3, &rng);
    auto model = SolveDpll(phi);
    EXPECT_EQ(model.has_value(), BruteForceSat(phi)) << trial;
    if (model.has_value()) {
      EXPECT_TRUE(phi.Evaluate(*model)) << trial;
    }
  }
}

TEST(Dpll, AgreesWithDedicatedSolvers) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula horn = RandomHorn(8, 20, 3, &rng);
    EXPECT_EQ(SolveDpll(horn).has_value(), SolveHorn(horn).has_value())
        << trial;
    CnfFormula two = RandomKSat(8, 16, 2, &rng);
    EXPECT_EQ(SolveDpll(two).has_value(), SolveTwoSat(two).has_value())
        << trial;
  }
}

TEST(Dpll, EdgeCases) {
  CnfFormula empty;
  empty.num_variables = 0;
  EXPECT_TRUE(SolveDpll(empty).has_value());
  CnfFormula empty_clause;
  empty_clause.num_variables = 1;
  empty_clause.clauses.push_back({});
  EXPECT_FALSE(SolveDpll(empty_clause).has_value());
  // Tautological clause (x | ~x).
  CnfFormula taut;
  taut.num_variables = 1;
  taut.clauses.push_back({{{0, true}, {0, false}}});
  EXPECT_TRUE(SolveDpll(taut).has_value());
}

TEST(Dpll, UnitPropagationDoesTheWorkOnHorn) {
  Rng rng(7);
  CnfFormula horn = RandomHorn(12, 30, 3, &rng);
  DpllStats stats;
  SolveDpll(horn, &stats);
  // Horn formulas should be decided with few decisions relative to
  // propagations on satisfiable cases; at minimum the stats move.
  EXPECT_GE(stats.decisions + stats.propagations + stats.conflicts, 0);
}

TEST(SatEncoding, RoundTripAgreesWithCspSearch) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.5, &rng);
    auto via_sat = SolveViaSat(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(via_sat.has_value(), solver.Solve().has_value()) << trial;
    if (via_sat.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*via_sat));
    }
  }
}

TEST(SatEncoding, ColoringInstances) {
  CspInstance odd = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  EXPECT_FALSE(SolveViaSat(odd).has_value());
  CspInstance three = ToCspInstance(CycleGraph(5), CliqueGraph(3));
  EXPECT_TRUE(SolveViaSat(three).has_value());
}

TEST(SatEncoding, EncodingShape) {
  CspInstance csp(2, 3);
  csp.AddConstraint({0, 1}, {{0, 1}});
  CnfFormula phi = DirectEncoding(csp);
  EXPECT_EQ(phi.num_variables, 6);
  // 2 at-least-one + 2*3 at-most-one + 8 blocked tuples.
  EXPECT_EQ(phi.clauses.size(), 2u + 6u + 8u);
}

TEST(SatEncoding, TernaryConstraints) {
  CspInstance csp(3, 2);
  std::vector<Tuple> odd_parity;
  for (int code = 0; code < 8; ++code) {
    Tuple t{code & 1, (code >> 1) & 1, (code >> 2) & 1};
    if ((t[0] ^ t[1] ^ t[2]) == 1) odd_parity.push_back(t);
  }
  csp.AddConstraint({0, 1, 2}, odd_parity);
  auto solution = SolveViaSat(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(((*solution)[0] ^ (*solution)[1] ^ (*solution)[2]), 1);
}

TEST(Stp, ConsistentChainAndBounds) {
  // 0 --[10,20]--> 1 --[5,5]--> 2.
  StpInstance stp;
  stp.num_points = 3;
  stp.AddInterval(0, 1, 10, 20);
  stp.AddInterval(1, 2, 5, 5);
  StpSolution solution = SolveStp(stp);
  ASSERT_TRUE(solution.consistent);
  EXPECT_TRUE(stp.Satisfies(solution.schedule));
  // Implied: 15 <= t2 - t0 <= 25.
  auto hi = TightestBound(stp, 0, 2);
  ASSERT_TRUE(hi.has_value());
  EXPECT_EQ(*hi, 25);
  auto neg_lo = TightestBound(stp, 2, 0);
  ASSERT_TRUE(neg_lo.has_value());
  EXPECT_EQ(*neg_lo, -15);
}

TEST(Stp, DetectsNegativeCycle) {
  // t1 - t0 >= 10 and t1 - t0 <= 5: inconsistent.
  StpInstance stp;
  stp.num_points = 2;
  stp.AddInterval(0, 1, 10, 10);
  stp.AddInterval(0, 1, 0, 5);
  EXPECT_FALSE(SolveStp(stp).consistent);
}

TEST(Stp, UnboundedPairs) {
  StpInstance stp;
  stp.num_points = 3;
  stp.AddInterval(0, 1, 0, 5);
  // Point 2 is unrelated: no implied bound.
  EXPECT_FALSE(TightestBound(stp, 0, 2).has_value());
  EXPECT_TRUE(SolveStp(stp).consistent);
}

TEST(Stp, AgreesWithDiscretizedCsp) {
  // Discretize a small STP over {0..4} and compare solvability with the
  // generic CSP solver.
  Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    StpInstance stp;
    stp.num_points = 4;
    std::vector<std::array<int64_t, 4>> intervals;
    for (int e = 0; e < 4; ++e) {
      int from = rng.UniformInt(0, 3);
      int to = rng.UniformInt(0, 3);
      if (from == to) continue;
      int64_t lo = rng.UniformInt(-2, 2);
      int64_t hi = lo + rng.UniformInt(0, 2);
      stp.AddInterval(from, to, lo, hi);
      intervals.push_back({from, to, lo, hi});
    }
    // CSP over values {0..4}: schedule times in a window.
    CspInstance csp(4, 5);
    for (const auto& [from, to, lo, hi] : intervals) {
      std::vector<Tuple> allowed;
      for (int a = 0; a < 5; ++a) {
        for (int b = 0; b < 5; ++b) {
          if (b - a >= lo && b - a <= hi) allowed.push_back({a, b});
        }
      }
      csp.AddConstraint({static_cast<int>(from), static_cast<int>(to)},
                        allowed);
    }
    BacktrackingSolver solver(csp);
    bool csp_solvable = solver.Solve().has_value();
    bool stp_consistent = SolveStp(stp).consistent;
    // Discretization can only lose solutions; the STP relaxation is
    // exact over the integers, so csp-solvable implies stp-consistent.
    if (csp_solvable) {
      EXPECT_TRUE(stp_consistent) << trial;
    }
    // With the window wide relative to the bounds, the converse holds
    // too on these sizes: translate the STP schedule into the window.
    if (stp_consistent && !csp_solvable) {
      // Verify the schedule genuinely does not fit the window.
      StpSolution s = SolveStp(stp);
      int64_t min = *std::min_element(s.schedule.begin(),
                                      s.schedule.end());
      int64_t max = *std::max_element(s.schedule.begin(),
                                      s.schedule.end());
      EXPECT_GT(max - min, 4) << trial;
    }
  }
}

}  // namespace
}  // namespace cspdb
