// Unit tests for the word-packed Bitset, including a randomized
// differential check against std::vector<char> across word boundaries.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Bitset, EmptyAndZeroSize) {
  Bitset b;
  EXPECT_EQ(b.size(), 0);
  EXPECT_EQ(b.Count(), 0);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.FindFirst(), -1);
  EXPECT_EQ(b.num_words(), 0);

  Bitset z(0, true);
  EXPECT_EQ(z.size(), 0);
  EXPECT_TRUE(z.None());
}

TEST(Bitset, ConstructAllSetKeepsTailClear) {
  for (int size : {1, 63, 64, 65, 127, 128, 130}) {
    Bitset b(size, true);
    EXPECT_EQ(b.size(), size) << size;
    EXPECT_EQ(b.Count(), size) << size;
    // The invariant that bits above size() stay zero is what lets
    // whole-word ops skip masking; check the raw last word.
    if (size % 64 != 0) {
      uint64_t tail = b.words()[b.num_words() - 1];
      EXPECT_EQ(tail >> (size % 64), 0u) << size;
    }
  }
}

TEST(Bitset, SetResetTestAcrossWordBoundary) {
  Bitset b(130);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_FALSE(b.Test(65));
  EXPECT_EQ(b.Count(), 4);
  b.Reset(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3);
}

TEST(Bitset, FindFirstAndNextSetBit) {
  Bitset b(200);
  EXPECT_EQ(b.FindFirst(), -1);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindFirst(), 5);
  EXPECT_EQ(b.NextSetBit(0), 5);
  EXPECT_EQ(b.NextSetBit(5), 5);
  EXPECT_EQ(b.NextSetBit(6), 64);
  EXPECT_EQ(b.NextSetBit(65), 199);
  EXPECT_EQ(b.NextSetBit(200), -1);
  // Iteration visits exactly the set bits, in order.
  std::vector<int> seen;
  for (int i = b.FindFirst(); i >= 0; i = b.NextSetBit(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, (std::vector<int>{5, 64, 199}));
}

TEST(Bitset, NextSetBitAtExactWordBoundaries) {
  // 64- and 128-bit capacities put size() exactly on a word boundary, so
  // a from == size scan must bail on the word-count guard, not read a
  // tail word that does not exist.
  for (int size : {64, 128}) {
    Bitset b(size);
    b.Set(size - 1);
    b.Set(size / 2);
    EXPECT_EQ(b.NextSetBit(0), size / 2) << size;
    EXPECT_EQ(b.NextSetBit(size / 2), size / 2) << size;
    EXPECT_EQ(b.NextSetBit(size / 2 + 1), size - 1) << size;
    EXPECT_EQ(b.NextSetBit(size - 1), size - 1) << size;
    EXPECT_EQ(b.NextSetBit(size), -1) << size;
    b.Reset(size - 1);
    EXPECT_EQ(b.NextSetBit(size / 2 + 1), -1) << size;
  }
  // Bits 63/64 straddle the first word boundary: the within-word shift
  // path must hand over to the next-word scan exactly there.
  Bitset b(128);
  b.Set(63);
  b.Set(64);
  EXPECT_EQ(b.NextSetBit(63), 63);
  EXPECT_EQ(b.NextSetBit(64), 64);
  EXPECT_EQ(b.NextSetBit(65), -1);
}

TEST(Bitset, LargeCapacityScansLandExactly) {
  // Big enough that the SIMD block-skip loop (4 words per probe on AVX2)
  // runs for thousands of blocks between hits; the sparse set bits sit
  // on and next to block boundaries.
  const int size = 1 << 20;
  Bitset b(size);
  const std::vector<int> set = {0, 63, 64, 255, 256, 8191, 8192, size - 1};
  for (int i : set) b.Set(i);
  EXPECT_EQ(b.Count(), static_cast<int>(set.size()));
  std::vector<int> seen;
  for (int i = b.FindFirst(); i >= 0; i = b.NextSetBit(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, set);
  EXPECT_EQ(b.NextSetBit(size - 1), size - 1);
  EXPECT_EQ(b.NextSetBit(size), -1);

  // A common bit only in the very last word forces FirstCommonBit and
  // Intersects through the full zero prefix.
  Bitset late(size);
  late.Set(size - 1);
  EXPECT_TRUE(b.Intersects(late));
  EXPECT_EQ(b.FirstCommonBit(late), size - 1);
  Bitset never(size);
  never.Set(1);
  EXPECT_FALSE(b.Intersects(never));
  EXPECT_EQ(b.FirstCommonBit(never), -1);
}

TEST(Bitset, WordParallelOpsDifferentialAcrossSimdBlocks) {
  // And/Or/AndNot/Count against a byte map at sizes spanning full SIMD
  // blocks plus every remainder shape (256 bits = one AVX2 op exactly).
  Rng rng(777);
  for (int size : {64, 127, 128, 129, 192, 255, 256, 257, 320, 511, 512}) {
    Bitset a(size), b(size);
    std::vector<char> ba(size, 0), bb(size, 0);
    for (int i = 0; i < size; ++i) {
      if (rng.UniformInt(0, 2) == 0) {
        a.Set(i);
        ba[i] = 1;
      }
      if (rng.UniformInt(0, 2) == 0) {
        b.Set(i);
        bb[i] = 1;
      }
    }
    Bitset and_bits = a, or_bits = a, andnot_bits = a;
    and_bits.AndWith(b);
    or_bits.OrWith(b);
    andnot_bits.AndNotWith(b);
    int first_common = -1;
    bool intersects = false;
    for (int i = 0; i < size; ++i) {
      ASSERT_EQ(and_bits.Test(i), ba[i] && bb[i]) << size << " bit " << i;
      ASSERT_EQ(or_bits.Test(i), ba[i] || bb[i]) << size << " bit " << i;
      ASSERT_EQ(andnot_bits.Test(i), ba[i] && !bb[i]) << size << " bit " << i;
      if (ba[i] && bb[i] && !intersects) {
        intersects = true;
        first_common = i;
      }
    }
    EXPECT_EQ(a.Intersects(b), intersects) << size;
    EXPECT_EQ(a.FirstCommonBit(b), first_common) << size;
  }
}

TEST(Bitset, WordParallelOps) {
  Bitset a(100), b(100);
  a.Set(3);
  a.Set(70);
  a.Set(99);
  b.Set(70);
  b.Set(71);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.FirstCommonBit(b), 70);

  Bitset c = a;
  c.AndWith(b);
  EXPECT_EQ(c.Count(), 1);
  EXPECT_TRUE(c.Test(70));

  c = a;
  c.OrWith(b);
  EXPECT_EQ(c.Count(), 4);

  c = a;
  c.AndNotWith(b);
  EXPECT_EQ(c.Count(), 2);
  EXPECT_TRUE(c.Test(3));
  EXPECT_TRUE(c.Test(99));
  EXPECT_FALSE(c.Test(70));

  Bitset disjoint(100);
  disjoint.Set(0);
  EXPECT_FALSE(a.Intersects(disjoint));
  EXPECT_EQ(a.FirstCommonBit(disjoint), -1);
}

TEST(Bitset, EqualityAndDebugString) {
  Bitset a(5), b(5);
  a.Set(1);
  b.Set(1);
  EXPECT_EQ(a, b);
  b.Set(4);
  EXPECT_NE(a, b);
  EXPECT_EQ(b.DebugString(), "01001");
  EXPECT_NE(Bitset(5), Bitset(6));  // same (empty) content, different size
}

TEST(Bitset, DifferentialAgainstByteMap) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    int size = rng.UniformInt(1, 300);
    Bitset bits(size);
    std::vector<char> bytes(size, 0);
    for (int step = 0; step < 400; ++step) {
      int i = rng.UniformInt(0, size - 1);
      if (rng.UniformInt(0, 1) == 1) {
        bits.Set(i);
        bytes[i] = 1;
      } else {
        bits.Reset(i);
        bytes[i] = 0;
      }
    }
    int count = 0;
    int first = -1;
    for (int i = 0; i < size; ++i) {
      ASSERT_EQ(bits.Test(i), bytes[i] != 0) << trial << " bit " << i;
      if (bytes[i]) {
        ++count;
        if (first < 0) first = i;
      }
    }
    EXPECT_EQ(bits.Count(), count) << trial;
    EXPECT_EQ(bits.FindFirst(), first) << trial;
    EXPECT_EQ(bits.Any(), count > 0) << trial;
  }
}

}  // namespace
}  // namespace cspdb
