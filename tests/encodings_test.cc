// Tests for singleton arc consistency, the dual encoding, and the
// treewidth lower bound.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "consistency/arc_consistency.h"
#include "csp/convert.h"
#include "csp/dual_encoding.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/exact.h"
#include "treewidth/heuristics.h"
#include "treewidth/gaifman.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(SingletonArcConsistency, StrongerThanGac) {
  // C5 with 2 colors: GAC-consistent but SAC detects unsolvability.
  CspInstance odd = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  EXPECT_TRUE(EnforceGac(odd).consistent);
  EXPECT_FALSE(EnforceSingletonArcConsistency(odd).consistent);
  CspInstance even = ToCspInstance(CycleGraph(6), CliqueGraph(2));
  EXPECT_TRUE(EnforceSingletonArcConsistency(even).consistent);
}

TEST(SingletonArcConsistency, SoundNeverPrunesSolutions) {
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.45, &rng);
    AcResult sac = EnforceSingletonArcConsistency(csp);
    BacktrackingSolver solver(csp);
    auto solution = solver.Solve();
    if (!solution.has_value()) continue;
    ASSERT_TRUE(sac.consistent) << trial;
    for (int v = 0; v < csp.num_variables(); ++v) {
      EXPECT_TRUE(sac.domains[v][(*solution)[v]]) << trial;
    }
  }
}

TEST(SingletonArcConsistency, PrunesAtLeastAsMuchAsGac) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 7, 0.5, &rng);
    AcResult gac = EnforceGac(csp);
    AcResult sac = EnforceSingletonArcConsistency(csp);
    if (!gac.consistent || !sac.consistent) continue;
    for (int v = 0; v < csp.num_variables(); ++v) {
      for (int d = 0; d < csp.num_values(); ++d) {
        // SAC-surviving values survive GAC too.
        if (sac.domains[v][d]) {
          EXPECT_TRUE(gac.domains[v][d]) << trial;
        }
      }
    }
  }
}

TEST(DualEncoding, SolvabilityPreserved) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.5, &rng);
    auto via_dual = SolveViaDual(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(via_dual.has_value(), solver.Solve().has_value()) << trial;
    if (via_dual.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*via_dual)) << trial;
    }
  }
}

TEST(DualEncoding, TernaryBecomesBinary) {
  CspInstance csp(4, 2);
  std::vector<Tuple> parity;
  for (int code = 0; code < 8; ++code) {
    Tuple t{code & 1, (code >> 1) & 1, (code >> 2) & 1};
    if ((t[0] ^ t[1] ^ t[2]) == 0) parity.push_back(t);
  }
  csp.AddConstraint({0, 1, 2}, parity);
  csp.AddConstraint({1, 2, 3}, parity);
  DualEncoding encoding = BuildDualEncoding(csp);
  for (const Constraint& c : encoding.dual.constraints()) {
    EXPECT_LE(c.arity(), 2);
  }
  auto solution = SolveViaDual(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(csp.IsSolution(*solution));
}

TEST(DualEncoding, EdgeCases) {
  CspInstance no_constraints(3, 2);
  auto s = SolveViaDual(no_constraints);
  ASSERT_TRUE(s.has_value());
  CspInstance empty_rel(2, 2);
  empty_rel.AddConstraint({0, 1}, {});
  EXPECT_FALSE(SolveViaDual(empty_rel).has_value());
}

TEST(HiddenVariableEncoding, SolvabilityPreserved) {
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.5, &rng);
    auto via_hidden = SolveViaHiddenVariables(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(via_hidden.has_value(), solver.Solve().has_value()) << trial;
    if (via_hidden.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*via_hidden)) << trial;
    }
  }
}

TEST(HiddenVariableEncoding, IsBinaryAndKeepsOriginals) {
  CspInstance csp(3, 2);
  std::vector<Tuple> parity;
  for (int code = 0; code < 8; ++code) {
    Tuple t{code & 1, (code >> 1) & 1, (code >> 2) & 1};
    if ((t[0] ^ t[1] ^ t[2]) == 1) parity.push_back(t);
  }
  csp.AddConstraint({0, 1, 2}, parity);
  CspInstance hidden = HiddenVariableEncoding(csp);
  EXPECT_EQ(hidden.num_variables(), 4);  // 3 originals + 1 hidden
  for (const Constraint& c : hidden.constraints()) {
    EXPECT_LE(c.arity(), 2);
  }
  auto solution = SolveViaHiddenVariables(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->size(), 3u);
}

TEST(TreewidthBounds, LowerBoundsSandwichExact) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g(9);
    for (int u = 0; u < 9; ++u) {
      for (int v = u + 1; v < 9; ++v) {
        if (rng.Bernoulli(0.3)) g.AddEdge(u, v);
      }
    }
    int exact = ExactTreewidth(g);
    EXPECT_LE(TreewidthLowerBound(g), exact) << trial;
    EXPECT_GE(InducedWidth(g, MinFillOrdering(g)), exact) << trial;
  }
}

TEST(TreewidthBounds, KnownValues) {
  Graph clique(5);
  for (int u = 0; u < 5; ++u) {
    for (int v = u + 1; v < 5; ++v) clique.AddEdge(u, v);
  }
  EXPECT_EQ(TreewidthLowerBound(clique), 4);  // tight on cliques
  Graph path(6);
  for (int i = 0; i + 1 < 6; ++i) path.AddEdge(i, i + 1);
  EXPECT_EQ(TreewidthLowerBound(path), 1);
  EXPECT_EQ(TreewidthLowerBound(Graph(0)), -1);
}

}  // namespace
}  // namespace cspdb
