// Soundness tests for the serving layer's canonical fingerprints
// (ISSUE 5 satellite): isomorphic requests must collide, and across a
// fuzz corpus, instances with different solution sets must never collide.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/instance.h"
#include "datalog/program.h"
#include "db/conjunctive_query.h"
#include "gen/generators.h"
#include "relational/structure.h"
#include "relational/vocabulary.h"
#include "service/fingerprint.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

// All satisfying assignments of a (small) instance by brute force.
std::set<std::vector<int>> SolutionSet(const CspInstance& csp) {
  std::set<std::vector<int>> solutions;
  std::vector<int> assignment(csp.num_variables(), 0);
  while (true) {
    if (csp.IsSolution(assignment)) solutions.insert(assignment);
    int i = 0;
    for (; i < csp.num_variables(); ++i) {
      if (++assignment[i] < csp.num_values()) break;
      assignment[i] = 0;
    }
    if (i == csp.num_variables()) break;
  }
  return solutions;
}

// A copy of `csp` with variables renamed by `perm` (new id of old v is
// perm[v]), constraints added in shuffled order, and each constraint's
// tuple list shuffled. Isomorphic to `csp` by construction.
CspInstance RenamedShuffledCopy(const CspInstance& csp,
                                const std::vector<int>& perm, Rng* rng) {
  std::vector<int> order(csp.constraints().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng->Shuffle(&order);
  CspInstance copy(csp.num_variables(), csp.num_values());
  for (int c : order) {
    const Constraint& constraint = csp.constraint(c);
    std::vector<int> scope;
    for (int v : constraint.scope) scope.push_back(perm[v]);
    std::vector<Tuple> allowed = constraint.allowed;
    std::vector<int> tuple_order(allowed.size());
    for (std::size_t i = 0; i < tuple_order.size(); ++i) tuple_order[i] = i;
    rng->Shuffle(&tuple_order);
    std::vector<Tuple> shuffled;
    for (int i : tuple_order) shuffled.push_back(allowed[i]);
    copy.AddConstraint(std::move(scope), std::move(shuffled));
  }
  return copy;
}

std::vector<int> RandomPermutation(int n, Rng* rng) {
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  rng->Shuffle(&perm);
  return perm;
}

TEST(FingerprintTest, IsomorphicCopiesCollide) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed + 1);
    CspInstance csp = RandomBinaryCsp(/*num_variables=*/8, /*num_values=*/3,
                                      /*num_constraints=*/10,
                                      /*tightness=*/0.35, &rng);
    CanonicalCsp base = CanonicalizeCsp(csp);
    ASSERT_TRUE(base.fingerprint.exact) << "seed " << seed;

    CspInstance copy =
        RenamedShuffledCopy(csp, RandomPermutation(8, &rng), &rng);
    CanonicalCsp renamed = CanonicalizeCsp(copy);
    EXPECT_EQ(base.fingerprint, renamed.fingerprint) << "seed " << seed;
    // The canonical instances — not just the digests — must agree: the
    // cache serves canonical-space answers across isomorphic requests.
    EXPECT_EQ(base.canonical.DebugString(), renamed.canonical.DebugString())
        << "seed " << seed;
  }
}

TEST(FingerprintTest, PermutationMapsCanonicalSolutionsBack) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 7 + 3);
    CspInstance csp = RandomBinaryCsp(6, 3, 8, 0.3, &rng);
    CanonicalCsp canon = CanonicalizeCsp(csp);
    ASSERT_EQ(static_cast<int>(canon.perm.size()), csp.num_variables());

    std::set<std::vector<int>> original = SolutionSet(csp);
    std::set<std::vector<int>> canonical = SolutionSet(canon.canonical);
    EXPECT_EQ(original.size(), canonical.size()) << "seed " << seed;
    for (const std::vector<int>& sol : canonical) {
      std::vector<int> mapped(csp.num_variables());
      for (int v = 0; v < csp.num_variables(); ++v) {
        mapped[v] = sol[canon.perm[v]];
      }
      EXPECT_TRUE(csp.IsSolution(mapped)) << "seed " << seed;
    }
  }
}

// The fuzz corpus: 500 seeded instances, brute-forced solution sets.
// Two instances with different solution sets must never share an exact
// fingerprint (a collision there would serve one instance's cached
// answer for the other).
TEST(FingerprintTest, DistinctSolutionSetsNeverCollideFuzz) {
  struct Entry {
    uint64_t seed;
    std::set<std::vector<int>> solutions;
    std::string canonical_dump;
  };
  std::map<std::pair<uint64_t, uint64_t>, Entry> by_fingerprint;
  int collisions_checked = 0;
  std::set<std::pair<uint64_t, uint64_t>> distinct;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    Rng rng(seed);
    CspInstance csp = RandomBinaryCsp(/*num_variables=*/6, /*num_values=*/3,
                                      /*num_constraints=*/7,
                                      /*tightness=*/0.4, &rng);
    CanonicalCsp canon = CanonicalizeCsp(csp);
    ASSERT_TRUE(canon.fingerprint.exact) << "seed " << seed;
    std::pair<uint64_t, uint64_t> key = {canon.fingerprint.lo,
                                         canon.fingerprint.hi};
    distinct.insert(key);
    Entry entry = {seed, SolutionSet(canon.canonical),
                   canon.canonical.DebugString()};
    auto [it, inserted] = by_fingerprint.emplace(key, std::move(entry));
    if (!inserted) {
      ++collisions_checked;
      // A collision is only legal between isomorphic instances, which
      // share a canonical form and hence canonical solution set.
      EXPECT_EQ(it->second.canonical_dump, canon.canonical.DebugString())
          << "unsound collision: seeds " << it->second.seed << " and "
          << seed;
      EXPECT_EQ(it->second.solutions, SolutionSet(canon.canonical))
          << "seeds " << it->second.seed << " and " << seed;
    }
  }
  // Random model-B instances are essentially never isomorphic: expect an
  // (almost) collision-free corpus.
  EXPECT_GE(distinct.size(), 498u) << "suspicious collision rate; "
                                   << collisions_checked << " collisions";
}

TEST(FingerprintTest, MutantsGetFreshFingerprints) {
  int changed = 0;
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Rng rng(seed + 11);
    CspInstance csp = RandomBinaryCsp(8, 3, 10, 0.3, &rng);
    CspInstance mutant = MutateCsp(csp, &rng);
    if (CanonicalizeCsp(mutant).fingerprint !=
        CanonicalizeCsp(csp).fingerprint) {
      ++changed;
    }
  }
  // A toggled tuple occasionally no-ops (full relation, 16 failed add
  // retries) but must almost always produce a fresh key.
  EXPECT_GE(changed, 95);
}

TEST(FingerprintTest, QueryInvariantUnderExistentialRenamingAndReorder) {
  // Q(x0, x1) :- E(x0, x2), E(x2, x3), E(x3, x1)
  ConjunctiveQuery q(4, {0, 1},
                     {{"E", {0, 2}}, {"E", {2, 3}}, {"E", {3, 1}}});
  // Existentials renamed (2<->3) and body reordered.
  ConjunctiveQuery renamed(4, {0, 1},
                           {{"E", {2, 1}}, {"E", {0, 3}}, {"E", {3, 2}}});
  EXPECT_EQ(FingerprintQuery(q), FingerprintQuery(renamed));

  // A genuinely different body (path of length 2) must not collide.
  ConjunctiveQuery shorter(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  EXPECT_NE(FingerprintQuery(q), FingerprintQuery(shorter));

  // Head order is significant: Q(x,y) and Q(y,x) have different answers.
  ConjunctiveQuery swapped(4, {1, 0},
                           {{"E", {0, 2}}, {"E", {2, 3}}, {"E", {3, 1}}});
  EXPECT_NE(FingerprintQuery(q), FingerprintQuery(swapped));
}

TEST(FingerprintTest, StructureInsertionOrderIndependent) {
  Structure a(GraphVocabulary(), 4);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 2});
  a.AddTuple(0, {2, 3});
  Structure b(GraphVocabulary(), 4);
  b.AddTuple(0, {2, 3});
  b.AddTuple(0, {0, 1});
  b.AddTuple(0, {1, 2});
  EXPECT_EQ(FingerprintStructure(a), FingerprintStructure(b));

  Structure c(GraphVocabulary(), 4);
  c.AddTuple(0, {0, 1});
  c.AddTuple(0, {1, 2});
  c.AddTuple(0, {3, 2});
  EXPECT_NE(FingerprintStructure(a), FingerprintStructure(c));

  // Domain size matters even with identical tuples (isolated elements
  // change CSP/query semantics).
  Structure d(GraphVocabulary(), 5);
  d.AddTuple(0, {0, 1});
  d.AddTuple(0, {1, 2});
  d.AddTuple(0, {2, 3});
  EXPECT_NE(FingerprintStructure(a), FingerprintStructure(d));
}

TEST(FingerprintTest, ProgramInvariantUnderRuleOrderAndLocalRenaming) {
  DatalogProgram p = NonTwoColorabilityProgram();

  // Same rules, different order, different rule-local variable ids.
  DatalogProgram q;
  q.AddRule({{"Q", {}}, {{"P", {0, 0}}}, 1});
  q.AddRule({{"P", {3, 1}}, {{"P", {3, 0}}, {"E", {0, 2}}, {"E", {2, 1}}}, 4});
  q.AddRule({{"P", {1, 0}}, {{"E", {1, 0}}}, 2});
  q.SetGoal("Q");
  EXPECT_EQ(FingerprintProgram(p), FingerprintProgram(q));

  // Dropping the recursive rule changes the program.
  DatalogProgram r;
  r.AddRule({{"P", {0, 1}}, {{"E", {0, 1}}}, 2});
  r.AddRule({{"Q", {}}, {{"P", {0, 0}}}, 1});
  r.SetGoal("Q");
  EXPECT_NE(FingerprintProgram(p), FingerprintProgram(r));
}

TEST(FingerprintTest, CombineIsOrderSensitiveAndInexactnessContagious) {
  Fingerprint a{1, 2, true};
  Fingerprint b{3, 4, true};
  EXPECT_NE(CombineFingerprints(7, {a, b}), CombineFingerprints(7, {b, a}));
  EXPECT_NE(CombineFingerprints(7, {a, b}), CombineFingerprints(8, {a, b}));
  Fingerprint inexact{1, 2, false};
  EXPECT_FALSE(CombineFingerprints(7, {a, inexact}).exact);
}

}  // namespace
}  // namespace cspdb::service
