// Concurrency tests for the serving layer, written to run under
// ThreadSanitizer (the CI tsan job includes the ServiceConcurrency
// suite). The load-bearing assertions: N concurrent identical requests
// cause exactly one engine invocation (single-flight), a leader whose
// deadline expires mid-engine hands its flight to a waiting follower
// (promotion), and a mixed-key stampede stays data-race-free.
//
// The slow instance: RandomBinaryCsp(50, 10, 250, 0.34) with seed 3
// takes ~440ms of deterministic search (16k nodes) through the service's
// canonical path on this hardware class — a wide-enough window that all
// threads released by a barrier join the leader's flight microseconds
// after it starts.

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "csp/instance.h"
#include "gen/generators.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

CspInstance SlowInstance() {
  Rng rng(3);
  return RandomBinaryCsp(/*num_variables=*/50, /*num_values=*/10,
                         /*num_constraints=*/250, /*tightness=*/0.34, &rng);
}

// Spin barrier: all participants enter Handle within microseconds of
// each other (std::barrier would do, but a spin keeps the wake tight).
class SpinBarrier {
 public:
  explicit SpinBarrier(int n) : remaining_(n) {}
  void ArriveAndWait() {
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
    while (remaining_.load(std::memory_order_acquire) > 0) {
    }
  }

 private:
  std::atomic<int> remaining_;
};

TEST(ServiceConcurrency, IdenticalConcurrentRequestsRunEngineExactlyOnce) {
  CspdbService service;
  const CspInstance csp = SlowInstance();
  constexpr int kThreads = 8;
  SpinBarrier barrier(kThreads);
  std::vector<Response> responses(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      barrier.ArriveAndWait();
      responses[i] = service.Handle(SolveCspRequest{csp});
    });
  }
  for (std::thread& t : threads) t.join();

  // Exactly one caller ran the engine; everyone else coalesced onto its
  // flight (or, if scheduled very late, hit the cache it populated).
  EXPECT_EQ(service.stats().engine_invocations, 1);
  std::optional<std::vector<int>> reference;
  int coalesced_or_hit = 0;
  for (const Response& r : responses) {
    ASSERT_EQ(r.status, StatusCode::kOk);
    const CspAnswer& answer = std::get<CspAnswer>(r.answer);
    ASSERT_TRUE(answer.solution.has_value());
    EXPECT_TRUE(csp.IsSolution(*answer.solution));
    if (!reference.has_value()) {
      reference = answer.solution;
    } else {
      // Verified *identical* answers: the determinism contract across
      // the coalesced path.
      EXPECT_EQ(*reference, *answer.solution);
    }
    if (r.coalesced || r.cache_hit) ++coalesced_or_hit;
  }
  EXPECT_EQ(coalesced_or_hit, kThreads - 1);
  EXPECT_EQ(service.stats().coalesced + service.stats().cache_hits,
            kThreads - 1);
}

TEST(ServiceConcurrency, ExpiredLeaderHandsFlightToWaitingFollower) {
  const CspInstance csp = SlowInstance();

  // Calibrate on this build/sanitizer: one untimed cold run measures the
  // engine time (sanitizers slow it 10-20x). The leader then gets a
  // quarter of it — two orders of magnitude more than canonicalization,
  // so it reliably reaches the engine, and far too little to finish.
  int64_t engine_ns;
  {
    ServiceOptions probe_options;
    probe_options.enable_cache = false;
    probe_options.enable_single_flight = false;
    CspdbService probe(probe_options);
    const auto t0 = std::chrono::steady_clock::now();
    Response r = probe.Handle(SolveCspRequest{csp});
    engine_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    ASSERT_EQ(r.status, StatusCode::kOk);
  }

  CspdbService service;
  Response leader;
  std::thread leader_thread([&] {
    leader = service.Handle(SolveCspRequest{csp},
                            /*timeout_ns=*/engine_ns / 4);
  });
  // Followers must join the leader's flight before it resolves. Instead
  // of a wall-clock fraction of the calibrated engine time (flaky under
  // scheduler jitter), wait for the event itself: engine_invocations_ is
  // bumped at the top of RunEngine, strictly after the flight is
  // registered in the single-flight table, so once it reads >= 1 the
  // followers are guaranteed to coalesce rather than start a new flight.
  while (service.stats().engine_invocations < 1) std::this_thread::yield();
  Response followers[2];
  std::thread follower_threads[2];
  for (int i = 0; i < 2; ++i) {
    follower_threads[i] = std::thread([&, i] {
      followers[i] = service.Handle(SolveCspRequest{csp});
    });
  }
  leader_thread.join();
  for (std::thread& t : follower_threads) t.join();

  // The leader was shed; its failure did not poison the followers — one
  // was promoted, recomputed under its own (unlimited) deadline, and
  // both got the verified answer.
  EXPECT_EQ(leader.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().shed_deadline, 1);
  EXPECT_EQ(service.stats().engine_invocations, 2);
  std::optional<std::vector<int>> reference;
  for (const Response& r : followers) {
    ASSERT_EQ(r.status, StatusCode::kOk);
    const CspAnswer& answer = std::get<CspAnswer>(r.answer);
    ASSERT_TRUE(answer.solution.has_value());
    EXPECT_TRUE(csp.IsSolution(*answer.solution));
    if (!reference.has_value()) {
      reference = answer.solution;
    } else {
      EXPECT_EQ(*reference, *answer.solution);
    }
  }
}

TEST(ServiceConcurrency, MixedKeyStampedeIsRaceFreeAndAllAnswered) {
  // 4 threads replay overlapping slices of a skewed stream against one
  // service: cache LRU updates, single-flight table churn, and the stats
  // atomics all run concurrently. TSan validates the synchronization;
  // the assertions validate the overload contract (everything answered).
  CspdbService service;
  WorkloadOptions workload;
  workload.num_requests = 120;
  workload.pool_size = 6;
  workload.zipf_s = 1.2;
  workload.seed = 99;
  const std::vector<ServiceRequest> stream = GenerateRequestStream(workload);

  constexpr int kThreads = 4;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < stream.size(); i += kThreads) {
        Response r = service.Handle(stream[i]);
        if (r.status == StatusCode::kOk) ok.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok.load(), static_cast<int>(stream.size()));
  EXPECT_EQ(service.stats().requests, static_cast<int64_t>(stream.size()));
  EXPECT_GT(service.stats().cache_hits, 0);
}

}  // namespace
}  // namespace cspdb::service
