// Wire-protocol decoder fuzz/property suite (ISSUE 10 satellite). The
// decoder's contract is *strict and total*: any byte sequence — valid,
// truncated, oversized, version-skewed, bit-flipped, or garbage — must
// produce either a decoded value or a clean protocol error. It must
// never abort (the engine constructors CSPDB_CHECK on malformed input,
// so reaching one with unvalidated bytes is the bug this suite exists to
// catch) and never read out of bounds (the ASan/UBSan CI tiers run this
// file to hold that line).

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/wire.h"
#include "service/fingerprint.h"
#include "service/request.h"
#include "service/workload.h"
#include "util/rng.h"

namespace cspdb::net {
namespace {

using service::Response;
using service::ServiceRequest;
using service::StatusCode;

std::vector<ServiceRequest> SampleRequests() {
  service::WorkloadOptions options;
  options.seed = 7;
  options.num_requests = 40;
  options.pool_size = 6;
  options.mutation_prob = 0.3;
  return service::GenerateRequestStream(options);
}

std::vector<uint8_t> Encode(const ServiceRequest& request) {
  std::vector<uint8_t> payload;
  EncodeRequestPayload(request, &payload);
  return payload;
}

// Canonical fingerprints see through encoding: decode(encode(r)) must
// fingerprint identically to r, which is the property the peer cache
// depends on (a forwarded request must hit the owner's cache entry).
service::Fingerprint FingerprintOf(const ServiceRequest& request) {
  switch (service::KindOf(request)) {
    case service::RequestKind::kSolveCsp:
      return service::CanonicalizeCsp(
                 std::get<service::SolveCspRequest>(request).instance)
          .fingerprint;
    case service::RequestKind::kEvalCq: {
      const auto& req = std::get<service::EvalCqRequest>(request);
      return service::CombineFingerprints(
          1, {service::FingerprintQuery(req.query),
              service::FingerprintStructure(req.database)});
    }
    case service::RequestKind::kDatalogFixpoint: {
      const auto& req = std::get<service::DatalogFixpointRequest>(request);
      return service::CombineFingerprints(
          2, {service::FingerprintProgram(req.program),
              service::FingerprintStructure(req.edb)});
    }
    case service::RequestKind::kCheckContainment: {
      const auto& req = std::get<service::CheckContainmentRequest>(request);
      return service::CombineFingerprints(
          3, {service::FingerprintQuery(req.q1),
              service::FingerprintQuery(req.q2)});
    }
  }
  return {};
}

TEST(WireRequest, RoundTripsEveryKindAndPreservesFingerprints) {
  int kinds_seen[4] = {0, 0, 0, 0};
  for (const ServiceRequest& request : SampleRequests()) {
    ++kinds_seen[static_cast<int>(service::KindOf(request))];
    const std::vector<uint8_t> payload = Encode(request);
    std::string error;
    std::optional<ServiceRequest> decoded =
        DecodeRequestPayload(payload.data(), payload.size(), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(service::KindOf(*decoded), service::KindOf(request));
    // Re-encoding the decoded request must be byte-identical (the
    // encoding is canonical), and the canonical fingerprint must
    // survive the trip.
    EXPECT_EQ(Encode(*decoded), payload);
    const service::Fingerprint a = FingerprintOf(request);
    const service::Fingerprint b = FingerprintOf(*decoded);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.exact, b.exact);
  }
  for (int k = 0; k < 4; ++k) {
    EXPECT_GT(kinds_seen[k], 0) << "workload produced no kind-" << k
                                << " requests; suite lost coverage";
  }
}

TEST(WireRequest, EveryTruncationFailsCleanly) {
  for (const ServiceRequest& request : SampleRequests()) {
    const std::vector<uint8_t> payload = Encode(request);
    for (std::size_t len = 0; len < payload.size(); ++len) {
      std::string error;
      std::optional<ServiceRequest> decoded =
          DecodeRequestPayload(payload.data(), len, &error);
      EXPECT_FALSE(decoded.has_value())
          << "prefix of " << len << "/" << payload.size()
          << " bytes decoded as a complete request";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(WireRequest, TrailingBytesRejected) {
  std::vector<uint8_t> payload = Encode(SampleRequests().front());
  payload.push_back(0);
  std::string error;
  EXPECT_FALSE(
      DecodeRequestPayload(payload.data(), payload.size(), &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(WireRequest, ByteFlipFuzzNeverCrashes) {
  // Flip one byte at a time (every position, several values) and decode.
  // The decoder may accept (a flipped value byte can still be valid) or
  // reject, but must never abort or read out of bounds — under ASan this
  // test is the memory-safety proof for the whole decode surface.
  Rng rng(123);
  const std::vector<ServiceRequest> requests = SampleRequests();
  for (std::size_t r = 0; r < 8 && r < requests.size(); ++r) {
    const std::vector<uint8_t> payload = Encode(requests[r]);
    for (std::size_t pos = 0; pos < payload.size(); ++pos) {
      std::vector<uint8_t> mutated = payload;
      mutated[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
      std::string error;
      (void)DecodeRequestPayload(mutated.data(), mutated.size(), &error);
    }
  }
}

TEST(WireRequest, RandomGarbageNeverCrashes) {
  Rng rng(99);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> garbage(rng.UniformInt(0, 200));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    std::string error;
    (void)DecodeRequestPayload(garbage.data(), garbage.size(), &error);
  }
}

TEST(WireRequest, LyingCountsAreRejectedWithoutAllocation) {
  // kind=SolveCsp, plausible variables/values, then a constraint count
  // far beyond the remaining bytes: the bounded-count rule must reject
  // it before any reserve() happens.
  std::vector<uint8_t> payload;
  payload.push_back(0);                        // kind = SolveCsp
  for (uint8_t b : {10, 0, 0, 0}) payload.push_back(b);  // num_variables
  for (uint8_t b : {4, 0, 0, 0}) payload.push_back(b);   // num_values
  for (int i = 0; i < 4; ++i) payload.push_back(0xff);   // constraints = 2^32-1
  std::string error;
  EXPECT_FALSE(
      DecodeRequestPayload(payload.data(), payload.size(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(WireRequest, HugeVariableCountInTinyPayloadRejected) {
  // CspInstance's constructor allocates per-variable bookkeeping, so a
  // hostile header claiming the maximum variable count in a ~13-byte
  // payload must be rejected *before* construction — the variable count
  // is bounded by the bytes actually sent, not just the range ceiling.
  std::vector<uint8_t> payload;
  payload.push_back(0);  // kind = SolveCsp
  for (int i = 0; i < 4; ++i) {
    payload.push_back(static_cast<uint8_t>((1u << 16) >> (8 * i)));
  }
  for (uint8_t b : {2, 0, 0, 0}) payload.push_back(b);  // num_values
  for (uint8_t b : {0, 0, 0, 0}) payload.push_back(b);  // no constraints
  std::string error;
  EXPECT_FALSE(
      DecodeRequestPayload(payload.data(), payload.size(), &error).has_value());
  EXPECT_NE(error.find("remaining payload"), std::string::npos) << error;
}

TEST(WireRequest, SemanticViolationsRejected) {
  auto expect_reject = [](std::vector<uint8_t> payload, const char* what) {
    std::string error;
    EXPECT_FALSE(
        DecodeRequestPayload(payload.data(), payload.size(), &error)
            .has_value())
        << what;
    EXPECT_FALSE(error.empty()) << what;
  };
  auto u32 = [](std::vector<uint8_t>* out, uint32_t v) {
    for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  };

  {
    // CSP whose constraint scope names variable 5 of 3.
    std::vector<uint8_t> p;
    p.push_back(0);
    u32(&p, 3);  // num_variables
    u32(&p, 2);  // num_values
    u32(&p, 1);  // one constraint
    u32(&p, 1);  // scope length 1
    u32(&p, 5);  // variable 5: out of range
    u32(&p, 0);  // no tuples
    expect_reject(p, "scope variable out of range");
  }
  {
    // CSP tuple value outside the domain.
    std::vector<uint8_t> p;
    p.push_back(0);
    u32(&p, 3);
    u32(&p, 2);
    u32(&p, 1);
    u32(&p, 1);
    u32(&p, 0);
    u32(&p, 1);  // one tuple
    u32(&p, 7);  // value 7 of domain 2
    expect_reject(p, "tuple value out of range");
  }
  {
    // Containment request whose first query uses predicate E with two
    // different arities.
    std::vector<uint8_t> p;
    p.push_back(3);  // kCheckContainment
    u32(&p, 2);      // q1: num_variables
    u32(&p, 0);      // empty head
    u32(&p, 2);      // two atoms
    u32(&p, 1);      // strlen("E")
    p.push_back('E');
    u32(&p, 2);  // E(x0, x1)
    u32(&p, 0);
    u32(&p, 1);
    u32(&p, 1);  // strlen("E")
    p.push_back('E');
    u32(&p, 1);  // E(x0): arity clash
    u32(&p, 0);
    expect_reject(p, "inconsistent predicate arity");
  }
  {
    // Datalog program with an unsafe rule: H(x0) :- (empty body).
    std::vector<uint8_t> p;
    p.push_back(2);  // kDatalogFixpoint
    u32(&p, 1);      // one rule
    u32(&p, 1);      // strlen("H")
    p.push_back('H');
    u32(&p, 1);  // head args: (x0)
    u32(&p, 0);
    u32(&p, 0);  // empty body
    u32(&p, 1);  // num_variables = 1
    u32(&p, 0);  // goal: empty string
    // EDB: empty vocabulary, domain 0.
    u32(&p, 0);
    u32(&p, 0);
    expect_reject(p, "unsafe datalog rule");
  }
  {
    // Structure with a relation symbol of arity 0 (vocabulary requires
    // >= 1).
    std::vector<uint8_t> p;
    p.push_back(1);  // kEvalCq
    // Query: 1 variable, empty head, one atom E(x0).
    u32(&p, 1);
    u32(&p, 0);
    u32(&p, 1);
    u32(&p, 1);
    p.push_back('E');
    u32(&p, 1);
    u32(&p, 0);
    // Structure: one symbol "E" of arity 0.
    u32(&p, 1);
    u32(&p, 1);
    p.push_back('E');
    u32(&p, 0);  // arity 0
    expect_reject(p, "relation arity 0");
  }
}

TEST(WireResponse, RoundTripsEveryAnswerVariant) {
  std::vector<Response> responses;
  {
    Response r;
    r.kind = service::RequestKind::kSolveCsp;
    service::CspAnswer a;
    a.solution = std::vector<int>{2, 0, 1};
    r.answer = a;
    r.cache_hit = true;
    r.latency_ns = 12345;
    responses.push_back(r);
  }
  {
    Response r;
    r.kind = service::RequestKind::kEvalCq;
    service::RowsAnswer a;
    a.arity = 2;
    a.num_rows = 2;
    a.rows = {0, 1, 1, 0};
    r.answer = a;
    r.coalesced = true;
    r.queue_wait_ns = 55;
    responses.push_back(r);
  }
  {
    Response r;
    r.kind = service::RequestKind::kDatalogFixpoint;
    service::DatalogAnswer a;
    a.goal_derived = true;
    a.goal_facts.arity = 0;
    a.goal_facts.num_rows = 1;
    a.total_idb_facts = 9;
    r.answer = a;
    r.served_remotely = true;
    responses.push_back(r);
  }
  {
    Response r;
    r.kind = service::RequestKind::kCheckContainment;
    r.status = StatusCode::kDeadlineExceeded;
    r.answer = service::BoolAnswer{true};
    responses.push_back(r);
  }
  for (const Response& response : responses) {
    std::vector<uint8_t> payload;
    EncodeResponsePayload(response, &payload);
    std::string error;
    std::optional<Response> decoded =
        DecodeResponsePayload(payload.data(), payload.size(), &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->status, response.status);
    EXPECT_EQ(decoded->kind, response.kind);
    EXPECT_EQ(decoded->cache_hit, response.cache_hit);
    EXPECT_EQ(decoded->coalesced, response.coalesced);
    EXPECT_EQ(decoded->served_remotely, response.served_remotely);
    EXPECT_EQ(decoded->latency_ns, response.latency_ns);
    EXPECT_EQ(decoded->queue_wait_ns, response.queue_wait_ns);
    EXPECT_EQ(AnswerBytes(*decoded), AnswerBytes(response));
    // Truncations of response payloads fail cleanly too.
    for (std::size_t len = 0; len < payload.size(); ++len) {
      std::string e;
      EXPECT_FALSE(DecodeResponsePayload(payload.data(), len, &e).has_value());
    }
  }
}

TEST(WireResponse, RowPayloadMismatchRejected) {
  service::RowsAnswer a;
  a.arity = 2;
  a.num_rows = 3;     // claims 3 rows...
  a.rows = {1, 2};    // ...but carries 1
  Response r;
  r.kind = service::RequestKind::kEvalCq;
  r.answer = a;
  std::vector<uint8_t> payload;
  EncodeResponsePayload(r, &payload);
  std::string error;
  EXPECT_FALSE(
      DecodeResponsePayload(payload.data(), payload.size(), &error)
          .has_value());
  EXPECT_NE(error.find("num_rows"), std::string::npos) << error;
}

TEST(WireResponse, RowCountTimesArityOverflowRejected) {
  // arity = 2^16 and num_rows = 2^48 multiply to exactly 2^64, which
  // wraps to 0 and would agree with an empty rows array if the check
  // multiplied instead of dividing.
  std::vector<uint8_t> p;
  auto u32 = [&p](uint32_t v) {
    for (int i = 0; i < 4; ++i) p.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  auto u64 = [&p](uint64_t v) {
    for (int i = 0; i < 8; ++i) p.push_back(static_cast<uint8_t>(v >> (8 * i)));
  };
  p.push_back(0);  // status = kOk
  p.push_back(1);  // kind = kEvalCq
  p.push_back(0);  // flag bits
  u64(0);          // latency_ns
  u64(0);          // queue_wait_ns
  p.push_back(1);  // answer variant = RowsAnswer
  u32(1u << 16);   // arity (at the ceiling)
  u64(1ull << 48); // num_rows: arity * num_rows == 2^64 == 0 mod 2^64
  u32(0);          // rows array is empty
  std::string error;
  EXPECT_FALSE(DecodeResponsePayload(p.data(), p.size(), &error).has_value());
  EXPECT_NE(error.find("num_rows"), std::string::npos) << error;
}

std::vector<uint8_t> FrameBytes(const Frame& frame) {
  std::vector<uint8_t> out;
  AppendFrame(frame, &out);
  return out;
}

Frame SampleRequestFrame(uint64_t id) {
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = id;
  EncodeRequestPayload(SampleRequests().front(), &frame.payload);
  return frame;
}

TEST(FrameAssembler, ReassemblesAcrossArbitrarySplits) {
  // Three frames concatenated, fed in every chunk size from 1 byte up:
  // the assembler must yield exactly the same three frames regardless of
  // how the stream was split across reads.
  std::vector<uint8_t> stream;
  for (uint64_t id = 1; id <= 3; ++id) {
    const std::vector<uint8_t> bytes = FrameBytes(SampleRequestFrame(id));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{17},
                            std::size_t{64}, stream.size()}) {
    FrameAssembler assembler;
    std::vector<uint64_t> ids;
    for (std::size_t offset = 0; offset < stream.size(); offset += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - offset);
      assembler.Feed(stream.data() + offset, n);
      Frame frame;
      while (assembler.Next(&frame) == FrameAssembler::Status::kFrame) {
        ids.push_back(frame.request_id);
        EXPECT_EQ(frame.type, FrameType::kRequest);
      }
    }
    EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3})) << "chunk=" << chunk;
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
  }
}

TEST(FrameAssembler, OversizedLengthPrefixPoisons) {
  std::vector<uint8_t> bytes = FrameBytes(SampleRequestFrame(1));
  // Overwrite the payload-length field (offset 16) with kMax+1.
  const uint32_t huge = static_cast<uint32_t>(kMaxPayloadBytes) + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[16 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  FrameAssembler assembler;
  assembler.Feed(bytes.data(), bytes.size());
  Frame frame;
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kProtocolError);
  EXPECT_NE(assembler.error().find("exceeds"), std::string::npos);
  // Poisoned: stays an error even after more (valid) bytes arrive.
  const std::vector<uint8_t> good = FrameBytes(SampleRequestFrame(2));
  assembler.Feed(good.data(), good.size());
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kProtocolError);
  assembler.Reset();
  assembler.Feed(good.data(), good.size());
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kFrame);
}

TEST(FrameAssembler, WrongVersionMagicTypeAndFlagsPoison) {
  struct Case {
    std::size_t offset;
    uint8_t value;
    const char* what;
  };
  for (const Case& c :
       {Case{0, 0x00, "magic"}, Case{4, 2, "version"}, Case{5, 99, "type"},
        Case{6, 0xff, "flags"}}) {
    std::vector<uint8_t> bytes = FrameBytes(SampleRequestFrame(1));
    bytes[c.offset] = c.value;
    FrameAssembler assembler;
    assembler.Feed(bytes.data(), bytes.size());
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kProtocolError)
        << c.what;
    EXPECT_FALSE(assembler.error().empty()) << c.what;
  }
}

TEST(FrameAssembler, GarbageMidStreamAfterValidFrame) {
  std::vector<uint8_t> stream = FrameBytes(SampleRequestFrame(1));
  Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    stream.push_back(static_cast<uint8_t>(rng.UniformInt(0, 255)));
  }
  FrameAssembler assembler;
  assembler.Feed(stream.data(), stream.size());
  Frame frame;
  ASSERT_EQ(assembler.Next(&frame), FrameAssembler::Status::kFrame);
  EXPECT_EQ(frame.request_id, 1u);
  // The garbage that follows cannot be a valid header: the stream
  // poisons rather than resynchronizing on a guess.
  EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kProtocolError);
}

TEST(FrameAssembler, TruncatedHeaderNeedsMore) {
  const std::vector<uint8_t> bytes = FrameBytes(SampleRequestFrame(1));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameAssembler assembler;
    assembler.Feed(bytes.data(), len);
    Frame frame;
    EXPECT_EQ(assembler.Next(&frame), FrameAssembler::Status::kNeedMore)
        << "prefix " << len;
  }
}

TEST(WireError, RoundTripsAndRejectsJunk) {
  std::vector<uint8_t> payload;
  EncodeErrorPayload("bad frame magic", &payload);
  std::string error;
  std::optional<std::string> message =
      DecodeErrorPayload(payload.data(), payload.size(), &error);
  ASSERT_TRUE(message.has_value()) << error;
  EXPECT_EQ(*message, "bad frame magic");
  payload.push_back(0);
  EXPECT_FALSE(
      DecodeErrorPayload(payload.data(), payload.size(), &error).has_value());
}

}  // namespace
}  // namespace cspdb::net
