// Deterministic cross-validation driver for the invariant-audit layer:
// generates seeded random instances, runs every solver variant on each,
// checks that all variants agree on solvability, and audits every
// certificate (instances, solutions, decompositions, Datalog fixpoints)
// with the src/analysis validators. Unlike the CSPDB_AUDIT hooks — which
// compile out of Release builds — these audits run unconditionally, so
// the cross-validation holds in every build configuration.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "csp/backjump_solver.h"
#include "csp/convert.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// One audited solve: runs every solver variant, insists the solvability
// verdicts agree, and validates every returned assignment against the
// original instance. Returns the common verdict.
bool SolveAllVariantsAudited(const CspInstance& csp,
                             const std::string& label) {
  struct Attempt {
    const char* name;
    std::optional<std::vector<int>> solution;
  };
  std::vector<Attempt> attempts;

  for (auto propagation : {Propagation::kNone, Propagation::kForwardChecking,
                           Propagation::kGac}) {
    SolverOptions options;
    options.propagation = propagation;
    BacktrackingSolver solver(csp, options);
    attempts.push_back({"backtracking", solver.Solve()});
  }
  {
    BackjumpSolver solver(csp);
    attempts.push_back({"backjumping", solver.Solve()});
  }
  attempts.push_back(
      {"bucket-elimination", SolveWithTreewidthHeuristic(csp)});
  attempts.push_back({"hypertree", SolveWithHypertreeHeuristic(csp)});

  const bool solvable = attempts.front().solution.has_value();
  for (const Attempt& attempt : attempts) {
    EXPECT_EQ(attempt.solution.has_value(), solvable)
        << label << ": solver variant '" << attempt.name
        << "' disagrees on solvability";
    if (attempt.solution.has_value()) {
      Diagnostics diagnostics = ValidateSolution(csp, *attempt.solution);
      EXPECT_FALSE(HasErrors(diagnostics))
          << label << ": solver variant '" << attempt.name
          << "' returned an invalid certificate:\n"
          << FormatDiagnostics(diagnostics);
    }
  }
  return solvable;
}

// Audits the decompositions constructible for the instance's primal
// graph and constraint hypergraph.
void AuditDecompositions(const CspInstance& csp, const std::string& label) {
  CspInstance normalized = csp.NormalizedDistinctScopes();
  Graph primal = GaifmanGraphOfCsp(normalized);
  TreeDecomposition td = MinFillDecomposition(primal);
  Diagnostics td_diagnostics = ValidateTreeDecomposition(primal, td);
  EXPECT_FALSE(HasErrors(td_diagnostics))
      << label << ": min-fill tree decomposition invalid:\n"
      << FormatDiagnostics(td_diagnostics);

  Hypergraph h;
  for (const Constraint& c : normalized.constraints()) {
    h.edges.push_back(c.scope);
  }
  if (h.edges.empty()) return;
  auto htd = HypertreeFromTreeDecomposition(h, td);
  ASSERT_TRUE(htd.has_value()) << label;
  Diagnostics htd_diagnostics =
      ValidateHypertreeDecomposition(h, *htd, htd->Width());
  EXPECT_FALSE(HasErrors(htd_diagnostics))
      << label << ": hypertree decomposition invalid:\n"
      << FormatDiagnostics(htd_diagnostics);
}

TEST(AnalysisFuzz, RandomBinaryInstancesAcrossAllSolvers) {
  int solvable = 0;
  int audited = 0;
  for (uint64_t seed = 0; seed < 120; ++seed) {
    Rng rng(1000 + seed);
    int n = 6 + static_cast<int>(seed % 5);        // 6..10 variables
    int d = 2 + static_cast<int>(seed % 3);        // 2..4 values
    int max_constraints = n * (n - 1) / 2;
    int m = std::min(max_constraints, n + static_cast<int>(seed % n));
    double tightness = 0.15 + 0.04 * static_cast<double>(seed % 10);
    CspInstance csp = RandomBinaryCsp(n, d, m, tightness, &rng);

    const std::string label = "binary seed " + std::to_string(seed);
    Diagnostics instance_diagnostics = ValidateCspInstance(csp);
    ASSERT_FALSE(HasErrors(instance_diagnostics))
        << label << ":\n" << FormatDiagnostics(instance_diagnostics);

    if (SolveAllVariantsAudited(csp, label)) ++solvable;
    AuditDecompositions(csp, label);
    ++audited;
  }
  EXPECT_EQ(audited, 120);
  // The tightness sweep must cover both phases; a degenerate all-SAT or
  // all-UNSAT corpus would gut the cross-validation.
  EXPECT_GT(solvable, 10);
  EXPECT_LT(solvable, 110);
}

TEST(AnalysisFuzz, BoundedTreewidthInstancesAcrossAllSolvers) {
  int audited = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(7000 + seed);
    int n = 8 + static_cast<int>(seed % 6);        // 8..13 variables
    int k = 2 + static_cast<int>(seed % 2);        // treewidth bound 2..3
    int d = 2 + static_cast<int>(seed % 3);
    double tightness = 0.1 + 0.05 * static_cast<double>(seed % 8);
    CspInstance csp = RandomTreewidthCsp(n, k, d, tightness, 0.85, &rng);

    const std::string label = "treewidth seed " + std::to_string(seed);
    Diagnostics instance_diagnostics = ValidateCspInstance(csp);
    ASSERT_FALSE(HasErrors(instance_diagnostics))
        << label << ":\n" << FormatDiagnostics(instance_diagnostics);

    SolveAllVariantsAudited(csp, label);
    AuditDecompositions(csp, label);
    ++audited;
  }
  EXPECT_EQ(audited, 60);
}

TEST(AnalysisFuzz, HomomorphismInstancesRoundTrip) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(31000 + seed);
    Structure a = RandomDigraph(5 + static_cast<int>(seed % 3), 0.35, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    const std::string label = "hom seed " + std::to_string(seed);

    ASSERT_FALSE(HasErrors(ValidateStructure(a))) << label;
    ASSERT_FALSE(HasErrors(ValidateStructure(b))) << label;

    // The homomorphism search and the CSP(A, B) break-up must agree, and
    // both witnesses must validate.
    auto h = FindHomomorphism(a, b);
    CspInstance csp = ToCspInstance(a, b);
    ASSERT_FALSE(HasErrors(ValidateCspInstance(csp))) << label;
    BacktrackingSolver solver(csp);
    auto solution = solver.Solve();
    EXPECT_EQ(h.has_value(), solution.has_value()) << label;
    if (h.has_value()) {
      Diagnostics diagnostics = ValidateHomomorphism(a, b, *h);
      EXPECT_FALSE(HasErrors(diagnostics))
          << label << ":\n" << FormatDiagnostics(diagnostics);
    }
    if (solution.has_value()) {
      // A CSP(A, B) solution *is* a homomorphism A -> B.
      Diagnostics diagnostics = ValidateHomomorphism(a, b, *solution);
      EXPECT_FALSE(HasErrors(diagnostics))
          << label << ":\n" << FormatDiagnostics(diagnostics);
    }
  }
}

TEST(AnalysisFuzz, DatalogFixpointsAreClosedAndWellFormed) {
  DatalogProgram program = NonTwoColorabilityProgram();
  ASSERT_FALSE(HasErrors(ValidateDatalogProgram(program)));
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(53000 + seed);
    Structure edb = RandomDigraph(6, 0.3, &rng);
    const std::string label = "datalog seed " + std::to_string(seed);

    DatalogResult naive = EvaluateNaive(program, edb);
    DatalogResult semi = EvaluateSemiNaive(program, edb);
    Diagnostics naive_diagnostics =
        ValidateDatalogResult(program, edb, naive);
    Diagnostics semi_diagnostics = ValidateDatalogResult(program, edb, semi);
    EXPECT_FALSE(HasErrors(naive_diagnostics))
        << label << ":\n" << FormatDiagnostics(naive_diagnostics);
    EXPECT_FALSE(HasErrors(semi_diagnostics))
        << label << ":\n" << FormatDiagnostics(semi_diagnostics);
    EXPECT_EQ(naive.GoalDerived(program), semi.GoalDerived(program)) << label;
  }
}

}  // namespace
}  // namespace cspdb
