// Tests for CspInstance and the CSP <-> homomorphism conversions of
// Section 2.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/instance.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// A small 3-coloring instance over a triangle.
CspInstance Triangle3Color() {
  CspInstance csp(3, 3);
  std::vector<Tuple> neq;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      if (x != y) neq.push_back({x, y});
    }
  }
  csp.AddConstraint({0, 1}, neq);
  csp.AddConstraint({1, 2}, neq);
  csp.AddConstraint({0, 2}, neq);
  return csp;
}

TEST(CspInstance, IsSolutionChecksConstraints) {
  CspInstance csp = Triangle3Color();
  EXPECT_TRUE(csp.IsSolution({0, 1, 2}));
  EXPECT_FALSE(csp.IsSolution({0, 0, 2}));
}

TEST(CspInstance, PartialSolutionIgnoresUncoveredConstraints) {
  CspInstance csp = Triangle3Color();
  EXPECT_TRUE(csp.IsPartialSolution({0, kUnassigned, kUnassigned}));
  EXPECT_TRUE(csp.IsPartialSolution({0, 1, kUnassigned}));
  EXPECT_FALSE(csp.IsPartialSolution({0, 0, kUnassigned}));
}

TEST(CspInstance, ConsolidationIntersectsSameScope) {
  CspInstance csp(2, 3);
  csp.AddConstraint({0, 1}, {{0, 1}, {1, 2}, {2, 0}});
  int id = csp.AddConstraint({0, 1}, {{1, 2}, {2, 0}, {2, 2}});
  EXPECT_EQ(csp.constraints().size(), 1u);
  EXPECT_EQ(id, 0);
  EXPECT_EQ(csp.constraint(0).allowed.size(), 2u);
  EXPECT_TRUE(csp.constraint(0).allowed_set.count({1, 2}) > 0);
  EXPECT_TRUE(csp.constraint(0).allowed_set.count({2, 0}) > 0);
}

TEST(CspInstance, ConstraintsOnTracksMembership) {
  CspInstance csp = Triangle3Color();
  EXPECT_EQ(csp.ConstraintsOn(0).size(), 2u);
  EXPECT_EQ(csp.ConstraintsOn(1).size(), 2u);
}

TEST(CspInstance, NormalizedDistinctScopesDropsDisagreeingTuples) {
  CspInstance csp(2, 2);
  // Scope (x0, x0): only tuples with equal entries survive, projected.
  csp.AddConstraint({0, 0}, {{0, 0}, {0, 1}, {1, 1}});
  CspInstance norm = csp.NormalizedDistinctScopes();
  ASSERT_EQ(norm.constraints().size(), 1u);
  EXPECT_EQ(norm.constraint(0).scope, (std::vector<int>{0}));
  EXPECT_EQ(norm.constraint(0).allowed.size(), 2u);  // {0} and {1}
}

TEST(CspInstance, NormalizationPreservesSolutions) {
  Rng rng(3);
  CspInstance csp(3, 2);
  csp.AddConstraint({0, 1, 0}, {{0, 1, 0}, {1, 0, 0}, {1, 1, 1}});
  csp.AddConstraint({2, 2}, {{0, 0}, {0, 1}});
  CspInstance norm = csp.NormalizedDistinctScopes();
  // Enumerate all assignments; both instances must agree.
  for (int bits = 0; bits < 8; ++bits) {
    std::vector<int> a{bits & 1, (bits >> 1) & 1, (bits >> 2) & 1};
    EXPECT_EQ(csp.IsSolution(a), norm.IsSolution(a)) << bits;
  }
}

TEST(CspInstance, Names) {
  CspInstance csp(2, 2);
  EXPECT_EQ(csp.VariableName(0), "x0");
  EXPECT_EQ(csp.ValueName(1), "v1");
  csp.SetVariableName(0, "left");
  csp.SetValueName(1, "red");
  EXPECT_EQ(csp.VariableName(0), "left");
  EXPECT_EQ(csp.ValueName(1), "red");
}

TEST(Convert, RoundTripPreservesSolvability) {
  CspInstance csp = Triangle3Color();
  HomInstance hom = ToHomomorphismInstance(csp);
  auto h = FindHomomorphism(hom.a, hom.b);
  ASSERT_TRUE(h.has_value());
  // A homomorphism of the converted instance is a solution of the CSP.
  EXPECT_TRUE(csp.IsSolution(*h));
}

TEST(Convert, DistinctRelationsShared) {
  // Two constraints with the same allowed set share a template relation.
  CspInstance csp = Triangle3Color();
  HomInstance hom = ToHomomorphismInstance(csp);
  EXPECT_EQ(hom.b.vocabulary().size(), 1);
  EXPECT_EQ(hom.a.tuples(0).size(), 3u);
}

TEST(Convert, ToCspInstanceBreaksUpRelations) {
  Structure a = CycleGraph(5);
  Structure b = CliqueGraph(3);
  CspInstance csp = ToCspInstance(a, b);
  // One constraint per (deduplicated) tuple of A.
  EXPECT_EQ(csp.constraints().size(), a.tuples(0).size());
  EXPECT_EQ(csp.num_variables(), 5);
  EXPECT_EQ(csp.num_values(), 3);
}

TEST(Convert, SolutionsAreHomomorphisms) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    CspInstance csp = ToCspInstance(a, b);
    bool csp_solvable = false;
    // Enumerate all assignments of 4 variables over 3 values.
    std::vector<int> assignment(4);
    for (int code = 0; code < 81; ++code) {
      int c = code;
      for (int v = 0; v < 4; ++v) {
        assignment[v] = c % 3;
        c /= 3;
      }
      if (csp.IsSolution(assignment)) {
        csp_solvable = true;
        EXPECT_TRUE(IsHomomorphism(a, b, assignment));
      }
    }
    EXPECT_EQ(csp_solvable, FindHomomorphism(a, b).has_value());
  }
}

TEST(Convert, RoundTripBothDirections) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomDigraph(4, 0.5, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    CspInstance csp = ToCspInstance(a, b);
    HomInstance hom = ToHomomorphismInstance(csp);
    EXPECT_EQ(FindHomomorphism(a, b).has_value(),
              FindHomomorphism(hom.a, hom.b).has_value());
  }
}

}  // namespace
}  // namespace cspdb
