// Tests for the text serialization formats and DIMACS CNF I/O.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "boolean/horn_sat.h"
#include "boolean/two_sat.h"
#include "gen/generators.h"
#include "io/text_format.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(TextFormat, StructureRoundTrip) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Structure a = RandomDigraph(5, 0.4, &rng, /*allow_loops=*/true);
    Structure back = ParseStructure(SerializeStructure(a));
    EXPECT_TRUE(a.SameTuplesAs(back)) << trial;
  }
}

TEST(TextFormat, StructureWithComments) {
  Structure a = ParseStructure(
      "structure\n"
      "# a triangle\n"
      "domain 3\n"
      "relation E 2\n"
      "tuple E 0 1\n"
      "tuple E 1 2\n"
      "tuple E 2 0\n");
  EXPECT_EQ(a.domain_size(), 3);
  EXPECT_EQ(a.tuples(0).size(), 3u);
  EXPECT_TRUE(a.HasTuple(0, {2, 0}));
}

TEST(TextFormat, CspRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.4, &rng);
    CspInstance back = ParseCsp(SerializeCsp(csp));
    EXPECT_EQ(back.num_variables(), csp.num_variables());
    EXPECT_EQ(back.num_values(), csp.num_values());
    ASSERT_EQ(back.constraints().size(), csp.constraints().size());
    for (std::size_t i = 0; i < csp.constraints().size(); ++i) {
      EXPECT_EQ(back.constraint(static_cast<int>(i)).scope,
                csp.constraint(static_cast<int>(i)).scope);
      EXPECT_EQ(back.constraint(static_cast<int>(i)).allowed_set,
                csp.constraint(static_cast<int>(i)).allowed_set);
    }
  }
}

TEST(TextFormat, MalformedInputsAbort) {
  EXPECT_DEATH(ParseStructure("nonsense"), "missing 'structure'");
  EXPECT_DEATH(ParseStructure("structure\nrelation E 2\n"),
               "missing 'domain'");
  EXPECT_DEATH(ParseCsp("csp 2 2\nallow 0 0\n"),
               "'allow' before any 'constraint'");
  EXPECT_DEATH(ParseCsp("csp 2 2\nconstraint 2 0 1\nallow 0\n"),
               "arity mismatch");
}

TEST(Dimacs, RoundTrip) {
  Rng rng(7);
  CnfFormula phi = RandomKSat(6, 12, 3, &rng);
  CnfFormula back = ReadDimacs(WriteDimacs(phi));
  EXPECT_EQ(back.num_variables, phi.num_variables);
  ASSERT_EQ(back.clauses.size(), phi.clauses.size());
  // Satisfiability-preserving at minimum: evaluate a few assignments.
  for (int code = 0; code < 16; ++code) {
    std::vector<int> a(6);
    for (int v = 0; v < 6; ++v) a[v] = (code >> v) & 1;
    EXPECT_EQ(phi.Evaluate(a), back.Evaluate(a)) << code;
  }
}

TEST(Dimacs, ParsesStandardExample) {
  CnfFormula phi = ReadDimacs(
      "c a classic example\n"
      "p cnf 3 2\n"
      "1 -3 0\n"
      "2 3 -1 0\n");
  EXPECT_EQ(phi.num_variables, 3);
  ASSERT_EQ(phi.clauses.size(), 2u);
  EXPECT_EQ(phi.clauses[0].literals.size(), 2u);
  EXPECT_EQ(phi.clauses[1].literals.size(), 3u);
  EXPECT_TRUE(phi.clauses[0].literals[0].positive);
  EXPECT_FALSE(phi.clauses[0].literals[1].positive);
}

TEST(Dimacs, MultiLineClauses) {
  CnfFormula phi = ReadDimacs(
      "p cnf 4 1\n"
      "1 2\n"
      "3 4 0\n");
  ASSERT_EQ(phi.clauses.size(), 1u);
  EXPECT_EQ(phi.clauses[0].literals.size(), 4u);
}

TEST(Dimacs, FeedsSolvers) {
  CnfFormula horn = ReadDimacs(
      "p cnf 3 3\n"
      "1 0\n"
      "-1 2 0\n"
      "-2 -3 0\n");
  ASSERT_TRUE(horn.IsHorn());
  auto model = SolveHorn(horn);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model, (std::vector<int>{1, 1, 0}));
}

}  // namespace
}  // namespace cspdb
