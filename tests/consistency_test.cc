// Tests for Section 5: i-consistency and strong k-consistency
// (Definition 5.2 vs the game formulation, Proposition 5.3), establishing
// strong k-consistency (Theorem 5.6), coherence, and arc consistency.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "consistency/arc_consistency.h"
#include "consistency/establish.h"
#include "consistency/local_consistency.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Proposition53, DirectAndGameDefinitionsAgree) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(4, 3, 4, 0.4, &rng);
    for (int i = 1; i <= 3; ++i) {
      EXPECT_EQ(IsIConsistent(csp, i), IsIConsistentViaGames(csp, i))
          << trial << " i=" << i;
    }
    EXPECT_EQ(IsStronglyKConsistent(csp, 3),
              IsStronglyKConsistentViaGames(csp, 3))
        << trial;
  }
}

TEST(Consistency, TriangleColoringIsStronglyTwoConsistent) {
  CspInstance csp = ToCspInstance(CliqueGraph(3), CliqueGraph(3));
  EXPECT_TRUE(IsStronglyKConsistent(csp, 2));
  // Not 3-consistent... in fact it is: two differing colors always
  // extend to a third. With 3 values it IS 3-consistent.
  EXPECT_TRUE(IsIConsistent(csp, 3));
}

TEST(Consistency, TwoColoringTriangleFailsThreeConsistency) {
  CspInstance csp = ToCspInstance(CliqueGraph(3), CliqueGraph(2));
  // Any two distinct colors on two vertices cannot extend to the third.
  EXPECT_FALSE(IsIConsistent(csp, 3));
  EXPECT_TRUE(IsIConsistent(csp, 2));
}

TEST(Theorem56, EstablishingPossibleIffDuplicatorWins) {
  Rng rng(73);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    PebbleGame game(a, b, 2);
    EstablishResult result = EstablishStrongKConsistency(a, b, 2);
    EXPECT_EQ(result.possible, game.DuplicatorWins()) << trial;
  }
}

TEST(Theorem56, OutputIsStronglyKConsistent) {
  Rng rng(79);
  int checked = 0;
  for (int trial = 0; trial < 10 && checked < 4; ++trial) {
    Structure a = RandomDigraph(4, 0.3, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    EstablishResult result = EstablishStrongKConsistency(a, b, 2);
    if (!result.possible) continue;
    ++checked;
    EXPECT_TRUE(IsStronglyKConsistent(result.csp, 2)) << trial;
    EXPECT_TRUE(IsCoherent(result.csp)) << trial;
  }
  EXPECT_GT(checked, 0);
}

TEST(Theorem56, SolutionsPreserved) {
  // Property 4 of Definition 5.4: h is a solution of the original
  // instance iff it is a solution of the established instance.
  Rng rng(83);
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 4; ++trial) {
    Structure a = RandomDigraph(3, 0.5, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    EstablishResult result = EstablishStrongKConsistency(a, b, 2);
    if (!result.possible) continue;
    ++checked;
    // Enumerate all maps A -> B.
    std::vector<int> h(3);
    for (int code = 0; code < 27; ++code) {
      int c = code;
      for (int v = 0; v < 3; ++v) {
        h[v] = c % 3;
        c /= 3;
      }
      EXPECT_EQ(IsHomomorphism(a, b, h), result.csp.IsSolution(h))
          << trial << " code=" << code;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Theorem56, MoreConstrainedThanOriginal) {
  // Property 3 of Definition 5.4: partial solutions of the established
  // instance are partial homomorphisms of the original one.
  Rng rng(89);
  int checked = 0;
  for (int trial = 0; trial < 10 && checked < 3; ++trial) {
    Structure a = RandomDigraph(3, 0.5, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    EstablishResult result = EstablishStrongKConsistency(a, b, 2);
    if (!result.possible) continue;
    ++checked;
    // Every allowed pair in the established constraints must be a partial
    // homomorphism of (a, b).
    for (const Constraint& c : result.csp.constraints()) {
      for (const Tuple& t : c.allowed) {
        std::vector<int> partial(a.domain_size(), kUnassigned);
        for (int q = 0; q < c.arity(); ++q) partial[c.scope[q]] = t[q];
        EXPECT_TRUE(IsPartialHomomorphism(a, b, partial));
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Theorem56, LargestInstanceContainsAllHomRestrictions) {
  // Maximality in testable form: every restriction of a full
  // homomorphism is a winning configuration, so the established R_a sets
  // must contain the tuples every solution induces.
  Rng rng(91);
  int checked = 0;
  for (int trial = 0; trial < 10 && checked < 4; ++trial) {
    Structure a = RandomDigraph(3, 0.5, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    auto h = FindHomomorphism(a, b);
    if (!h.has_value()) continue;
    EstablishResult result = EstablishStrongKConsistency(a, b, 2);
    ASSERT_TRUE(result.possible) << trial;
    ++checked;
    for (const Constraint& c : result.csp.constraints()) {
      Tuple image;
      for (int v : c.scope) image.push_back((*h)[v]);
      EXPECT_TRUE(c.allowed_set.count(image) > 0) << trial;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Theorem57, KConsistencyDecidesTwoColorability) {
  // For B = K2, not-CSP(B) is k-Datalog expressible for k = 3 on
  // bounded-treewidth inputs; establishing 3-consistency decides.
  Rng rng(97);
  Structure k2 = CliqueGraph(2);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomUndirectedGraph(6, 0.3, &rng);
    bool decided = KConsistencyDecides(a, k2, 3);
    EXPECT_EQ(decided, FindHomomorphism(a, k2).has_value()) << trial;
  }
}

TEST(Theorem57, TwoConsistencyIsOnlySoundForTwoColorability) {
  // k = 2 (arc consistency) never rejects a solvable instance but may
  // accept odd cycles: C5 is arc-consistent w.r.t. K2.
  Structure k2 = CliqueGraph(2);
  EXPECT_TRUE(KConsistencyDecides(CycleGraph(5), k2, 2));  // false positive
  EXPECT_FALSE(FindHomomorphism(CycleGraph(5), k2).has_value());
  EXPECT_FALSE(KConsistencyDecides(CycleGraph(5), k2, 3));
}

TEST(ArcConsistency, PrunesUnsupportedValues) {
  // x0 in {0,1}, x1 in {0,1}; constraint x0 < x1 (only (0,1) allowed).
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 1}, {{0, 1}});
  AcResult ac = EnforceGac(csp);
  EXPECT_TRUE(ac.consistent);
  EXPECT_TRUE(ac.domains[0][0]);
  EXPECT_FALSE(ac.domains[0][1]);
  EXPECT_FALSE(ac.domains[1][0]);
  EXPECT_TRUE(ac.domains[1][1]);
}

TEST(ArcConsistency, DetectsWipeout) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 1}, {{0, 1}});
  csp.AddConstraint({0}, {{1}});
  AcResult ac = EnforceGac(csp);
  EXPECT_FALSE(ac.consistent);
}

TEST(ArcConsistency, SoundNeverPrunesSolutions) {
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.45, &rng);
    AcResult ac = EnforceGac(csp);
    BacktrackingSolver solver(csp);
    auto solution = solver.Solve();
    if (solution.has_value()) {
      ASSERT_TRUE(ac.consistent);
      for (int v = 0; v < csp.num_variables(); ++v) {
        EXPECT_TRUE(ac.domains[v][(*solution)[v]]) << trial;
      }
    }
  }
}

TEST(ArcConsistency, RestrictToDomainsKeepsSolutions) {
  Rng rng(103);
  CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.4, &rng);
  AcResult ac = EnforceGac(csp);
  if (ac.consistent) {
    CspInstance restricted = RestrictToDomains(csp, ac.domains);
    BacktrackingSolver s1(csp), s2(restricted);
    EXPECT_EQ(s1.CountSolutions(), s2.CountSolutions());
  }
}

TEST(Coherence, CoherentAndIncoherentExamples) {
  // Coherent: a single constraint.
  CspInstance coherent(2, 2);
  coherent.AddConstraint({0, 1}, {{0, 1}, {1, 0}});
  EXPECT_TRUE(IsCoherent(coherent));
  // Incoherent: binary constraint allows (0,0) but unary forbids x0=0.
  CspInstance incoherent(2, 2);
  incoherent.AddConstraint({0, 1}, {{0, 0}, {1, 1}});
  incoherent.AddConstraint({0}, {{1}});
  EXPECT_FALSE(IsCoherent(incoherent));
}

}  // namespace
}  // namespace cspdb
