// Additional treewidth coverage: known width values for classic graph
// families, optimal-ordering round trips, and elimination-order
// sensitivity of bucket elimination.

#include <gtest/gtest.h>

#include <algorithm>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/tree_decomposition.h"
#include "util/rng.h"

namespace cspdb {
namespace {

Graph CompleteBipartite(int m, int n) {
  Graph g(m + n);
  for (int u = 0; u < m; ++u) {
    for (int v = 0; v < n; ++v) g.AddEdge(u, m + v);
  }
  return g;
}

Graph Wheel(int rim) {
  Graph g(rim + 1);
  for (int i = 0; i < rim; ++i) {
    g.AddEdge(i, (i + 1) % rim);
    g.AddEdge(i, rim);  // hub
  }
  return g;
}

Graph Tree(int n, Rng* rng) {
  Graph g(n);
  for (int v = 1; v < n; ++v) g.AddEdge(rng->UniformInt(0, v - 1), v);
  return g;
}

TEST(TreewidthFamilies, CompleteBipartite) {
  // tw(K_{m,n}) = min(m, n).
  EXPECT_EQ(ExactTreewidth(CompleteBipartite(2, 5)), 2);
  EXPECT_EQ(ExactTreewidth(CompleteBipartite(3, 3)), 3);
  EXPECT_EQ(ExactTreewidth(CompleteBipartite(1, 6)), 1);  // a star
}

TEST(TreewidthFamilies, Wheels) {
  // Wheels have treewidth 3 (rim >= 4); the triangle wheel is K4.
  EXPECT_EQ(ExactTreewidth(Wheel(3)), 3);
  EXPECT_EQ(ExactTreewidth(Wheel(5)), 3);
  EXPECT_EQ(ExactTreewidth(Wheel(8)), 3);
}

TEST(TreewidthFamilies, TreesHaveWidthOne) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    Graph t = Tree(10, &rng);
    EXPECT_EQ(ExactTreewidth(t), 1) << trial;
    EXPECT_EQ(TreewidthLowerBound(t), 1) << trial;
    EXPECT_EQ(InducedWidth(t, MinDegreeOrdering(t)), 1) << trial;
  }
}

TEST(TreewidthFamilies, DecompositionFromOptimalOrderingIsOptimal) {
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g(8);
    for (int u = 0; u < 8; ++u) {
      for (int v = u + 1; v < 8; ++v) {
        if (rng.Bernoulli(0.35)) g.AddEdge(u, v);
      }
    }
    int tw = ExactTreewidth(g);
    TreeDecomposition td =
        DecompositionFromOrdering(g, OptimalEliminationOrdering(g));
    EXPECT_TRUE(IsValidDecomposition(g, td)) << trial;
    EXPECT_EQ(td.Width(), tw) << trial;
  }
}

TEST(BucketEliminationOrder, AnyOrderIsCorrect) {
  // Correctness must not depend on the elimination order — only cost
  // does. Shuffle orders and compare answers.
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp = RandomTreewidthCsp(8, 2, 3, 0.4, 0.9, &rng);
    BacktrackingSolver solver(csp);
    bool expected = solver.Solve().has_value();
    std::vector<int> order(8);
    for (int i = 0; i < 8; ++i) order[i] = i;
    for (int shuffle = 0; shuffle < 3; ++shuffle) {
      rng.Shuffle(&order);
      EXPECT_EQ(SolveByBucketElimination(csp, order).has_value(),
                expected)
          << trial << " shuffle " << shuffle;
    }
  }
}

TEST(BucketEliminationOrder, GoodOrderBeatsBadOrderOnTables) {
  // A star-shaped instance: eliminating the hub first (reversed order:
  // hub last position) forces the cross product; leaves-first stays
  // linear.
  int leaves = 8;
  CspInstance csp(leaves + 1, 3);
  for (int leaf = 0; leaf < leaves; ++leaf) {
    std::vector<Tuple> neq;
    for (int a = 0; a < 3; ++a) {
      for (int b = 0; b < 3; ++b) {
        if (a != b) neq.push_back({a, b});
      }
    }
    csp.AddConstraint({leaves, leaf}, neq);  // hub = variable `leaves`
  }
  // Good: hub eliminated last in processing = first in `order`.
  std::vector<int> good{leaves};
  for (int leaf = 0; leaf < leaves; ++leaf) good.push_back(leaf);
  BucketStats good_stats;
  ASSERT_TRUE(SolveByBucketElimination(csp, good, &good_stats).has_value());
  // Bad: hub processed first (last position) joins all leaf constraints.
  std::vector<int> bad;
  for (int leaf = 0; leaf < leaves; ++leaf) bad.push_back(leaf);
  bad.push_back(leaves);
  BucketStats bad_stats;
  ASSERT_TRUE(SolveByBucketElimination(csp, bad, &bad_stats).has_value());
  EXPECT_LT(good_stats.max_table_rows, bad_stats.max_table_rows);
  EXPECT_LE(good_stats.max_table_rows, 9);
}

TEST(Heuristics, MinFillNoWorseThanMinDegreeOnPartialKTrees) {
  // Not a theorem — a regression guard on these seeds: min-fill should
  // match or beat min-degree on this family.
  Rng rng(11);
  int fill_wins = 0, degree_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomPartialKTree(12, 3, 0.85, &rng);
    int fill = InducedWidth(g, MinFillOrdering(g));
    int degree = InducedWidth(g, MinDegreeOrdering(g));
    if (fill < degree) ++fill_wins;
    if (degree < fill) ++degree_wins;
  }
  EXPECT_GE(fill_wins, degree_wins);
}

}  // namespace
}  // namespace cspdb
