// Tests for the invariant-audit layer (src/analysis): every validator
// accepts known-good artifacts, and mutating each audited invariant —
// dropping a bag vertex, breaking connectedness, un-range-restricting a
// rule, corrupting one assignment entry — produces the right Diagnostic.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/analysis.h"
#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "relational/structure.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/hypertree.h"
#include "util/rng.h"

namespace cspdb {
namespace {

bool AnyErrorContains(const Diagnostics& diagnostics,
                      const std::string& needle) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError &&
        d.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// A 3-coloring instance of a 5-cycle: solvable, nontrivial primal graph.
CspInstance CycleColoring(int n, int colors) {
  CspInstance csp(n, colors);
  std::vector<Tuple> neq;
  for (int x = 0; x < colors; ++x) {
    for (int y = 0; y < colors; ++y) {
      if (x != y) neq.push_back({x, y});
    }
  }
  for (int v = 0; v < n; ++v) {
    csp.AddConstraint({v, (v + 1) % n}, neq);
  }
  return csp;
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing

TEST(Diagnostics, ToStringAndHelpers) {
  Diagnostic d{Severity::kError, "csp_instance", "constraint 3",
               "scope variable 9 out of range"};
  EXPECT_EQ(d.ToString(),
            "error[csp_instance] constraint 3: scope variable 9 out of range");
  Diagnostic w{Severity::kWarning, "structure", "", "empty relation"};
  EXPECT_EQ(w.ToString(), "warning[structure]: empty relation");

  Diagnostics list{w};
  EXPECT_FALSE(HasErrors(list));
  EXPECT_EQ(CountErrors(list), 0);
  list.push_back(d);
  EXPECT_TRUE(HasErrors(list));
  EXPECT_EQ(CountErrors(list), 1);
  EXPECT_EQ(FormatDiagnostics(list),
            w.ToString() + "\n" + d.ToString() + "\n");
  EXPECT_EQ(FormatDiagnostics({}), "");
}

TEST(Diagnostics, AuditOrDieIgnoresWarningsAndDiesOnErrors) {
  Diagnostics warnings{{Severity::kWarning, "structure", "", "empty"}};
  AuditOrDie("warnings only", warnings);  // must not abort
  Diagnostics errors{{Severity::kError, "structure", "", "bad"}};
  EXPECT_DEATH(AuditOrDie("bad artifact", errors), "CSPDB_AUDIT failed");
}

// ---------------------------------------------------------------------------
// Structures

TEST(ValidateStructure, AcceptsGeneratedDigraph) {
  Rng rng(7);
  Structure g = RandomDigraph(8, 0.4, &rng);
  EXPECT_FALSE(HasErrors(ValidateStructure(g)));
}

TEST(ValidateStructure, WarnsOnEmptyRelation) {
  Structure g(GraphVocabulary(), 3);
  Diagnostics diagnostics = ValidateStructure(g);
  EXPECT_FALSE(HasErrors(diagnostics));
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].severity, Severity::kWarning);
  EXPECT_NE(diagnostics[0].message.find("empty relation"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSP instances and solution certificates

TEST(ValidateCspInstance, AcceptsGeneratedInstances) {
  Rng rng(11);
  EXPECT_FALSE(HasErrors(ValidateCspInstance(
      RandomBinaryCsp(10, 3, 15, 0.3, &rng))));
  EXPECT_FALSE(HasErrors(ValidateCspInstance(
      RandomTreewidthCsp(12, 2, 3, 0.2, 0.8, &rng))));
  EXPECT_FALSE(HasErrors(ValidateCspInstance(CycleColoring(5, 3))));
}

TEST(ValidateCspInstance, WarnsOnEmptyRelation) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 1}, {});
  Diagnostics diagnostics = ValidateCspInstance(csp);
  EXPECT_FALSE(HasErrors(diagnostics));
  bool warned = false;
  for (const Diagnostic& d : diagnostics) {
    warned = warned || d.message.find("empty relation") != std::string::npos;
  }
  EXPECT_TRUE(warned);
}

TEST(ValidateSolution, AcceptsSolverCertificate) {
  CspInstance csp = CycleColoring(5, 3);
  BacktrackingSolver solver(csp);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  EXPECT_FALSE(HasErrors(ValidateSolution(csp, *solution)));
}

TEST(ValidateSolution, CorruptingOneAssignmentIsCaught) {
  CspInstance csp = CycleColoring(5, 3);
  BacktrackingSolver solver(csp);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.has_value());
  std::vector<int> corrupt = *solution;
  // Make variable 0 equal to its cycle successor, violating the
  // disequality constraint on {0, 1}.
  corrupt[0] = corrupt[1];
  Diagnostics diagnostics = ValidateSolution(csp, corrupt);
  EXPECT_TRUE(HasErrors(diagnostics));
  EXPECT_TRUE(AnyErrorContains(diagnostics, "not in the allowed relation"));
}

TEST(ValidateSolution, WrongLengthAndRangeAreCaught) {
  CspInstance csp = CycleColoring(5, 3);
  EXPECT_TRUE(AnyErrorContains(ValidateSolution(csp, {0, 1}), "entries"));
  EXPECT_TRUE(AnyErrorContains(ValidateSolution(csp, {0, 1, 0, 1, 9}),
                               "outside"));
}

TEST(ValidateHomomorphism, AcceptsWitnessAndCatchesCorruption) {
  Rng rng(3);
  Structure a = RandomDigraph(5, 0.4, &rng);
  // Map into the 2-element clique with loops: always a homomorphism
  // target when it has all edges.
  Structure b(GraphVocabulary(), 2);
  for (int u = 0; u < 2; ++u) {
    for (int v = 0; v < 2; ++v) b.AddTuple(0, {u, v});
  }
  auto h = FindHomomorphism(a, b);
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(HasErrors(ValidateHomomorphism(a, b, *h)));

  // Out-of-range image.
  std::vector<int> bad = *h;
  bad[0] = 7;
  EXPECT_TRUE(AnyErrorContains(ValidateHomomorphism(a, b, bad), "outside"));
}

TEST(ValidateHomomorphism, CatchesNonHomomorphism) {
  // a: single edge 0 -> 1; b: single edge 0 -> 1 and nothing else.
  Structure a(GraphVocabulary(), 2);
  a.AddTuple(0, {0, 1});
  Structure b(GraphVocabulary(), 2);
  b.AddTuple(0, {0, 1});
  EXPECT_FALSE(HasErrors(ValidateHomomorphism(a, b, {0, 1})));
  Diagnostics diagnostics = ValidateHomomorphism(a, b, {1, 0});
  EXPECT_TRUE(AnyErrorContains(diagnostics, "not in the target relation"));
}

// ---------------------------------------------------------------------------
// Tree decompositions

TEST(ValidateTreeDecomposition, AcceptsMinFillDecomposition) {
  Rng rng(19);
  Graph g = RandomPartialKTree(12, 3, 0.9, &rng);
  TreeDecomposition td = MinFillDecomposition(g);
  Diagnostics diagnostics = ValidateTreeDecomposition(g, td, td.Width());
  EXPECT_FALSE(HasErrors(diagnostics)) << FormatDiagnostics(diagnostics);
}

TEST(ValidateTreeDecomposition, DroppedBagVertexIsCaught) {
  Rng rng(19);
  Graph g = RandomPartialKTree(10, 2, 1.0, &rng);
  TreeDecomposition td = MinFillDecomposition(g);
  // Drop one vertex from the largest bag: either some edge loses
  // coverage, the vertex disappears entirely, or its subtree disconnects.
  auto largest = std::max_element(
      td.bags.begin(), td.bags.end(),
      [](const auto& x, const auto& y) { return x.size() < y.size(); });
  ASSERT_GE(largest->size(), 2u);
  largest->erase(largest->begin());
  EXPECT_TRUE(HasErrors(ValidateTreeDecomposition(g, td)));
}

TEST(ValidateTreeDecomposition, BrokenConnectednessIsCaught) {
  // Path graph 0-1-2 with path decomposition {0,1} - {1} - {1,2}; removing
  // vertex 1 from the middle bag breaks the running intersection without
  // affecting coverage.
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td;
  td.bags = {{0, 1}, {1}, {1, 2}};
  td.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(HasErrors(ValidateTreeDecomposition(g, td)));
  td.bags[1] = {0};  // vertex 1's holders {0, 2} are now disconnected
  Diagnostics diagnostics = ValidateTreeDecomposition(g, td);
  EXPECT_TRUE(AnyErrorContains(diagnostics, "running intersection"));
}

TEST(ValidateTreeDecomposition, CycleAndWidthClaimsAreCaught) {
  Graph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  TreeDecomposition td;
  td.bags = {{0, 1}, {1, 2}, {1}};
  td.edges = {{0, 1}, {1, 2}, {2, 0}};  // a 3-cycle of tree edges
  EXPECT_TRUE(AnyErrorContains(ValidateTreeDecomposition(g, td), "cycle"));

  td.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(HasErrors(ValidateTreeDecomposition(g, td)));
  EXPECT_TRUE(AnyErrorContains(ValidateTreeDecomposition(g, td, 5),
                               "claimed width"));
}

TEST(ValidateTreeDecompositionForStructure, TupleCoverageIsStrict) {
  // A single ternary tuple: covering all pairwise Gaifman edges with
  // 2-element bags is valid for the graph but NOT for the structure.
  Vocabulary voc;
  voc.AddSymbol("R", 3);
  Structure a(voc, 3);
  a.AddTuple(0, {0, 1, 2});
  TreeDecomposition pairwise;
  pairwise.bags = {{0, 1}, {1, 2}, {0, 2}};
  pairwise.edges = {{0, 1}, {0, 2}};
  // (Running intersection also breaks here; use a star around {0,1,2} to
  // isolate the coverage condition.)
  TreeDecomposition full;
  full.bags = {{0, 1, 2}};
  EXPECT_FALSE(HasErrors(ValidateTreeDecompositionForStructure(a, full)));
  Diagnostics diagnostics =
      ValidateTreeDecompositionForStructure(a, pairwise);
  EXPECT_TRUE(AnyErrorContains(diagnostics, "contained in no bag"));
}

// ---------------------------------------------------------------------------
// Hypertree decompositions

TEST(ValidateHypertreeDecomposition, AcceptsConstructedDecomposition) {
  Rng rng(23);
  CspInstance csp = RandomBinaryCsp(8, 3, 10, 0.3, &rng);
  CspInstance normalized = csp.NormalizedDistinctScopes();
  Hypergraph h;
  for (const Constraint& c : normalized.constraints()) {
    h.edges.push_back(c.scope);
  }
  auto htd = HypertreeFromTreeDecomposition(
      h, MinFillDecomposition(GaifmanGraphOfCsp(normalized)));
  ASSERT_TRUE(htd.has_value());
  Diagnostics diagnostics =
      ValidateHypertreeDecomposition(h, *htd, htd->Width());
  EXPECT_FALSE(HasErrors(diagnostics)) << FormatDiagnostics(diagnostics);
}

TEST(ValidateHypertreeDecomposition, GuardAndCoverageMutationsAreCaught) {
  // Two edges sharing vertex 1, one node holding everything.
  Hypergraph h;
  h.edges = {{0, 1}, {1, 2}};
  HypertreeDecomposition htd;
  htd.chi = {{0, 1, 2}};
  htd.lambda = {{0, 1}};
  EXPECT_FALSE(HasErrors(ValidateHypertreeDecomposition(h, htd)));

  // Drop one guard edge: bag vertex 2 is no longer covered.
  HypertreeDecomposition no_guard = htd;
  no_guard.lambda = {{0}};
  EXPECT_TRUE(AnyErrorContains(ValidateHypertreeDecomposition(h, no_guard),
                               "not covered by the guard"));

  // Shrink the bag: hyperedge {1,2} is contained in no bag.
  HypertreeDecomposition no_cover = htd;
  no_cover.chi = {{0, 1}};
  EXPECT_TRUE(AnyErrorContains(ValidateHypertreeDecomposition(h, no_cover),
                               "constraint uncovered"));

  // Claimed width must match.
  EXPECT_TRUE(AnyErrorContains(ValidateHypertreeDecomposition(h, htd, 1),
                               "claimed width"));

  // Broken running intersection across two nodes.
  HypertreeDecomposition split;
  split.chi = {{0, 1}, {0, 2}, {1, 2}};
  split.lambda = {{0}, {0, 1}, {1}};
  split.edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(AnyErrorContains(ValidateHypertreeDecomposition(h, split),
                               "running intersection"));
}

// ---------------------------------------------------------------------------
// Datalog

TEST(ValidateDatalogRule, UnRangeRestrictedRuleIsCaught) {
  // Safe rule: H(x) :- E(x, y).
  DatalogRule safe;
  safe.head = {"H", {0}};
  safe.body = {{"E", {0, 1}}};
  safe.num_variables = 2;
  EXPECT_FALSE(HasErrors(ValidateDatalogRule(safe)));

  // Un-range-restrict it: H(z) :- E(x, y) with z not in the body.
  DatalogRule unsafe;
  unsafe.head = {"H", {2}};
  unsafe.body = {{"E", {0, 1}}};
  unsafe.num_variables = 3;
  Diagnostics diagnostics = ValidateDatalogRule(unsafe);
  EXPECT_TRUE(AnyErrorContains(diagnostics, "not range-restricted"));

  // Out-of-range variable id.
  DatalogRule bad_id;
  bad_id.head = {"H", {0}};
  bad_id.body = {{"E", {0, 5}}};
  bad_id.num_variables = 2;
  EXPECT_TRUE(AnyErrorContains(ValidateDatalogRule(bad_id), "outside"));
}

TEST(ValidateDatalogProgram, AcceptsCanonicalExample) {
  DatalogProgram program = NonTwoColorabilityProgram();
  Diagnostics diagnostics = ValidateDatalogProgram(program);
  EXPECT_FALSE(HasErrors(diagnostics)) << FormatDiagnostics(diagnostics);
}

TEST(ValidateDatalogResult, AcceptsFixpointAndCatchesMutations) {
  DatalogProgram program = NonTwoColorabilityProgram();
  // An odd cycle: the goal derives.
  Structure edb(GraphVocabulary(), 3);
  edb.AddTuple(0, {0, 1});
  edb.AddTuple(0, {1, 2});
  edb.AddTuple(0, {2, 0});
  DatalogResult result = EvaluateSemiNaive(program, edb);
  ASSERT_TRUE(result.GoalDerived(program));
  EXPECT_FALSE(HasErrors(ValidateDatalogResult(program, edb, result)));

  // Remove one derived fact: the result is no longer closed.
  DatalogResult holey = result;
  auto& p_facts = holey.idb["P"];
  ASSERT_FALSE(p_facts.empty());
  p_facts.erase(p_facts.begin());
  EXPECT_TRUE(AnyErrorContains(ValidateDatalogResult(program, edb, holey),
                               "not closed under the rules"));

  // Record facts for a non-IDB predicate.
  DatalogResult alien = result;
  alien.idb["E"].insert({0, 1});
  EXPECT_TRUE(AnyErrorContains(ValidateDatalogResult(program, edb, alien),
                               "non-IDB"));

  // Corrupt a fact's arity.
  DatalogResult fat = result;
  fat.idb["P"].insert({0, 1, 2});
  EXPECT_TRUE(AnyErrorContains(ValidateDatalogResult(program, edb, fat),
                               "arity"));

  // Out-of-domain element.
  DatalogResult wild = result;
  wild.idb["P"].insert({0, 9});
  EXPECT_TRUE(AnyErrorContains(ValidateDatalogResult(program, edb, wild),
                               "outside the EDB domain"));
}

}  // namespace
}  // namespace cspdb
