// Additional Section 5 coverage: the consistency ladder (GAC < SAC,
// GAC vs PC incomparabilities), higher-arity i-consistency, and
// establishing strong 3-consistency end to end.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "consistency/arc_consistency.h"
#include "consistency/establish.h"
#include "consistency/local_consistency.h"
#include "consistency/path_consistency.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(ConsistencyLadder, RefutationPowerOnOddCycles) {
  // C7 with two colors: GAC passes, PC and SAC both refute, and so does
  // establishing strong 3-consistency.
  CspInstance csp = ToCspInstance(CycleGraph(7), CliqueGraph(2));
  EXPECT_TRUE(EnforceGac(csp).consistent);
  EXPECT_FALSE(EnforcePathConsistency(csp).consistent);
  EXPECT_FALSE(EnforceSingletonArcConsistency(csp).consistent);
  HomInstance hom = ToHomomorphismInstance(csp);
  EXPECT_FALSE(EstablishStrongKConsistency(hom.a, hom.b, 3).possible);
}

TEST(ConsistencyLadder, AllPassOnSolvableColorings) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomUndirectedGraph(6, 0.3, &rng);
    if (!IsBipartite(g)) continue;
    CspInstance csp = ToCspInstance(g, CliqueGraph(2));
    EXPECT_TRUE(EnforceGac(csp).consistent) << trial;
    EXPECT_TRUE(EnforcePathConsistency(csp).consistent) << trial;
    EXPECT_TRUE(EnforceSingletonArcConsistency(csp).consistent) << trial;
  }
}

TEST(IConsistency, HigherArityInstances) {
  // A ternary parity chain is 2-consistent but parity forces failures at
  // higher levels when a unary pin conflicts.
  CspInstance csp(3, 2);
  std::vector<Tuple> even;
  for (int code = 0; code < 8; ++code) {
    Tuple t{code & 1, (code >> 1) & 1, (code >> 2) & 1};
    if ((t[0] ^ t[1] ^ t[2]) == 0) even.push_back(t);
  }
  csp.AddConstraint({0, 1, 2}, even);
  EXPECT_TRUE(IsIConsistent(csp, 1));
  EXPECT_TRUE(IsIConsistent(csp, 2));
  EXPECT_TRUE(IsIConsistent(csp, 3));
  // Pin two variables oddly: partial solutions on {0,1} still extend
  // (the third variable absorbs parity), so 3-consistency holds even
  // with a unary constraint.
  csp.AddConstraint({0}, {{1}});
  EXPECT_EQ(IsIConsistent(csp, 3), IsIConsistentViaGames(csp, 3));
}

TEST(IConsistency, DirectAndGameAgreeOnTernaryInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    CspInstance csp(4, 2);
    for (int c = 0; c < 3; ++c) {
      std::vector<int> scope = rng.SampleDistinct(4, 3);
      std::vector<Tuple> allowed;
      for (int code = 0; code < 8; ++code) {
        if (rng.Bernoulli(0.75)) {
          allowed.push_back({code & 1, (code >> 1) & 1, (code >> 2) & 1});
        }
      }
      if (allowed.empty()) allowed.push_back({0, 0, 0});
      csp.AddConstraint(scope, allowed);
    }
    for (int i = 1; i <= 3; ++i) {
      EXPECT_EQ(IsIConsistent(csp, i), IsIConsistentViaGames(csp, i))
          << trial << " i=" << i;
    }
  }
}

TEST(Establish, StrongThreeConsistencyOutputValidated) {
  Rng rng(11);
  int checked = 0;
  for (int trial = 0; trial < 10 && checked < 3; ++trial) {
    Structure a = RandomDigraph(4, 0.35, &rng);
    Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
    EstablishResult result = EstablishStrongKConsistency(a, b, 3);
    if (!result.possible) continue;
    ++checked;
    EXPECT_TRUE(IsStronglyKConsistent(result.csp, 3)) << trial;
    EXPECT_TRUE(IsCoherent(result.csp)) << trial;
    // Solutions preserved (Definition 5.4 property 4) for k = 3 too.
    std::vector<int> h(4);
    for (int code = 0; code < 81; ++code) {
      int c = code;
      for (int v = 0; v < 4; ++v) {
        h[v] = c % 3;
        c /= 3;
      }
      EXPECT_EQ(IsHomomorphism(a, b, h), result.csp.IsSolution(h))
          << trial << " code " << code;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(Establish, ImpossibleMatchesUnsolvableOnTreewidthTwo) {
  // For inputs of treewidth <= 2 the 3-pebble game is exact, so
  // "establishing strong 3-consistency is impossible" == unsolvable.
  Rng rng(13);
  for (int trial = 0; trial < 6; ++trial) {
    Structure a = RandomTreewidthDigraph(5, 2, 0.85, &rng);
    Structure b = RandomDigraph(2, 0.5, &rng, /*allow_loops=*/true);
    EstablishResult result = EstablishStrongKConsistency(a, b, 3);
    EXPECT_EQ(result.possible, FindHomomorphism(a, b).has_value())
        << trial;
  }
}

}  // namespace
}  // namespace cspdb
