// Tests for GYO reduction, join forests, the full reducer, and the
// Yannakakis algorithm (Section 6's acyclic-join discussion).

#include <gtest/gtest.h>

#include <algorithm>

#include "db/acyclic.h"
#include "db/algebra.h"
#include "util/rng.h"

namespace cspdb {
namespace {

DbRelation Rel(std::vector<int> schema, std::vector<Tuple> rows) {
  DbRelation r(std::move(schema));
  for (Tuple& t : rows) r.AddRow(std::move(t));
  return r;
}

TEST(Gyo, PathSchemaIsAcyclic) {
  Hypergraph h{{{0, 1}, {1, 2}, {2, 3}}};
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(Gyo, TriangleSchemaIsCyclic) {
  Hypergraph h{{{0, 1}, {1, 2}, {0, 2}}};
  EXPECT_FALSE(IsAlphaAcyclic(h));
}

TEST(Gyo, TriangleWithCoveringEdgeIsAcyclic) {
  // Alpha-acyclicity: adding the big edge {0,1,2} makes it acyclic.
  Hypergraph h{{{0, 1}, {1, 2}, {0, 2}, {0, 1, 2}}};
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(Gyo, StarSchemaIsAcyclic) {
  Hypergraph h{{{0, 1}, {0, 2}, {0, 3}, {0, 4}}};
  auto forest = BuildJoinForest(h);
  ASSERT_TRUE(forest.has_value());
  EXPECT_EQ(forest->order.size(), 4u);
}

TEST(Gyo, DisconnectedComponentsFormForest) {
  Hypergraph h{{{0, 1}, {2, 3}}};
  EXPECT_TRUE(IsAlphaAcyclic(h));
}

TEST(Gyo, CycleOfLengthFourIsCyclic) {
  Hypergraph h{{{0, 1}, {1, 2}, {2, 3}, {3, 0}}};
  EXPECT_FALSE(IsAlphaAcyclic(h));
}

TEST(Yannakakis, MatchesJoinAllOnPathQuery) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<DbRelation> rels;
    for (int i = 0; i < 4; ++i) {
      DbRelation r({i, i + 1});
      for (int row = 0; row < 12; ++row) {
        r.AddRow({rng.UniformInt(0, 4), rng.UniformInt(0, 4)});
      }
      rels.push_back(std::move(r));
    }
    auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
    ASSERT_TRUE(forest.has_value());
    DbRelation direct = JoinAll(rels);
    EXPECT_EQ(AcyclicJoinNonempty(*forest, rels), !direct.empty());
    DbRelation yan =
        YannakakisEvaluate(*forest, rels, {0, 4});
    DbRelation expected = Project(direct, {0, 4});
    EXPECT_EQ(yan.size(), expected.size()) << trial;
    for (auto row : expected.rows()) {
      EXPECT_TRUE(yan.HasRow(row.ToTuple()));
    }
  }
}

TEST(Yannakakis, FullReducerRemovesDanglingTuples) {
  std::vector<DbRelation> rels;
  rels.push_back(Rel({0, 1}, {{1, 2}, {5, 6}}));
  rels.push_back(Rel({1, 2}, {{2, 3}}));
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  ASSERT_TRUE(forest.has_value());
  FullReducer(*forest, &rels);
  // (5,6) dangles: no continuation in the second relation.
  EXPECT_EQ(rels[0].size(), 1u);
  EXPECT_TRUE(rels[0].HasRow({1, 2}));
  EXPECT_EQ(rels[1].size(), 1u);
}

TEST(Yannakakis, EmptyJoinDetected) {
  std::vector<DbRelation> rels;
  rels.push_back(Rel({0, 1}, {{1, 2}}));
  rels.push_back(Rel({1, 2}, {{9, 9}}));
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  ASSERT_TRUE(forest.has_value());
  EXPECT_FALSE(AcyclicJoinNonempty(*forest, rels));
}

TEST(Yannakakis, CrossProductComponents) {
  std::vector<DbRelation> rels;
  rels.push_back(Rel({0}, {{1}, {2}}));
  rels.push_back(Rel({1}, {{7}}));
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  ASSERT_TRUE(forest.has_value());
  DbRelation result = YannakakisEvaluate(*forest, rels, {0, 1});
  EXPECT_EQ(result.size(), 2u);
  EXPECT_TRUE(result.HasRow({1, 7}));
  EXPECT_TRUE(result.HasRow({2, 7}));
}

TEST(Yannakakis, StarQueryIntermediatesStayPolynomial) {
  // Star query: center attribute 0 shared by all relations. A bad join
  // order blows up; Yannakakis stays linear in input+output.
  Rng rng(13);
  std::vector<DbRelation> rels;
  int legs = 4;
  for (int i = 0; i < legs; ++i) {
    DbRelation r({0, i + 1});
    for (int row = 0; row < 30; ++row) {
      // Most rows share center value 0 so the cross-blowup is real on
      // the full join but the Boolean answer stays cheap.
      r.AddRow({rng.UniformInt(0, 1), rng.UniformInt(0, 29)});
    }
    rels.push_back(std::move(r));
  }
  auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
  ASSERT_TRUE(forest.has_value());
  int64_t yan_peak = 0;
  DbRelation center_only =
      YannakakisEvaluate(*forest, rels, {0}, &yan_peak);
  EXPECT_FALSE(center_only.empty());
  int64_t direct_peak = 0;
  JoinAll(rels, &direct_peak);
  // The left-to-right join materializes the multiplicative blowup; the
  // Yannakakis projections keep intermediates small.
  EXPECT_LT(yan_peak, direct_peak);
}

TEST(Yannakakis, RandomAcyclicSchemasAgreeWithDirectJoin) {
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    // Random tree-shaped schema: attribute tree, relation per edge.
    int n = 5;
    std::vector<DbRelation> rels;
    for (int v = 1; v < n; ++v) {
      int parent = rng.UniformInt(0, v - 1);
      DbRelation r({parent, v});
      for (int row = 0; row < 8; ++row) {
        r.AddRow({rng.UniformInt(0, 3), rng.UniformInt(0, 3)});
      }
      rels.push_back(std::move(r));
    }
    auto forest = BuildJoinForest(HypergraphOfSchemas(rels));
    ASSERT_TRUE(forest.has_value());
    EXPECT_EQ(AcyclicJoinNonempty(*forest, rels),
              !JoinAll(rels).empty())
        << trial;
  }
}

}  // namespace
}  // namespace cspdb
