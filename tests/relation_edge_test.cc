// Edge-case regression tests for DbRelation's lazy row-hash index and
// bulk-append paths: empty relations through join/semijoin/hash-probe
// kernels (the RehashInto guards), AppendRowsUnchecked, and PrepareIndex
// for concurrent readers.

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "db/algebra.h"
#include "db/parallel_algebra.h"
#include "db/relation.h"

namespace cspdb {
namespace {

TEST(RelationEdge, EmptyRelationBasics) {
  DbRelation r({0, 1});
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.HasRow(Tuple{1, 2}));
  r.PrepareIndex();  // must not crash on the zero-row index
  EXPECT_FALSE(r.HasRow(Tuple{0, 0}));
  int rows = 0;
  for (auto row : r.rows()) {
    (void)row;
    ++rows;
  }
  EXPECT_EQ(rows, 0);
}

TEST(RelationEdge, JoinAndSemijoinWithEmptySides) {
  DbRelation empty({0, 1});
  DbRelation full({1, 2});
  full.AddRow(Tuple{1, 2});
  full.AddRow(Tuple{3, 4});

  EXPECT_TRUE(NaturalJoin(empty, full).empty());
  EXPECT_TRUE(NaturalJoin(full, empty).empty());
  EXPECT_TRUE(NaturalJoin(empty, empty).empty());
  EXPECT_TRUE(Semijoin(empty, full).empty());
  EXPECT_TRUE(Semijoin(full, empty).empty());

  // Schemas still compose correctly on the empty outputs.
  DbRelation joined = NaturalJoin(empty, full);
  ASSERT_EQ(joined.arity(), 3);
  EXPECT_EQ(joined.schema(), (std::vector<int>{0, 1, 2}));
}

TEST(RelationEdge, ParallelKernelsHandleEmptySides) {
  exec::ThreadPool pool(2);
  ParallelDbOptions options;
  options.pool = &pool;
  options.min_probe_rows = 0;
  DbRelation empty({0, 1});
  DbRelation full({1, 2});
  full.AddRow(Tuple{1, 2});
  EXPECT_TRUE(NaturalJoinParallel(empty, full, options).empty());
  EXPECT_TRUE(NaturalJoinParallel(full, empty, options).empty());
  EXPECT_TRUE(SemijoinParallel(empty, full, options).empty());
  EXPECT_TRUE(SemijoinParallel(full, empty, options).empty());
}

TEST(RelationEdge, ArityZeroRelations) {
  // Arity 0: the Boolean relations {()} (true) and {} (false).
  DbRelation truth({});
  truth.AddRow(Tuple{});
  EXPECT_EQ(truth.size(), 1u);
  truth.AddRow(Tuple{});  // duplicate of the empty row
  EXPECT_EQ(truth.size(), 1u);
  EXPECT_TRUE(truth.HasRow(Tuple{}));

  DbRelation falsity({});
  EXPECT_FALSE(falsity.HasRow(Tuple{}));
  EXPECT_EQ(NaturalJoin(truth, truth).size(), 1u);
  EXPECT_TRUE(NaturalJoin(truth, falsity).empty());
}

TEST(RelationEdge, HashProbeAfterManyAppendsAndRehashes) {
  // Push the open-addressed index through several growth rehashes, then
  // probe every row plus misses (guards in RehashInto must stay silent).
  DbRelation r({0, 1, 2});
  for (int i = 0; i < 5000; ++i) {
    r.AddRow(Tuple{i, i * 7 % 1000, i % 13});
  }
  EXPECT_EQ(r.size(), 5000u);
  for (int i = 0; i < 5000; i += 97) {
    EXPECT_TRUE(r.HasRow(Tuple{i, i * 7 % 1000, i % 13})) << i;
  }
  EXPECT_FALSE(r.HasRow(Tuple{5001, 0, 0}));
  EXPECT_FALSE(r.HasRow(Tuple{-1, -1, -1}));
}

TEST(RelationEdge, AppendRowsUncheckedBulkMatchesRowByRow) {
  DbRelation bulk({0, 1});
  DbRelation single({0, 1});
  std::vector<int> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back(i);
    rows.push_back(i * 3);
    const int row[] = {i, i * 3};
    single.AppendRowUnchecked(row);
  }
  bulk.AppendRowsUnchecked(rows.data(), 100);
  ASSERT_EQ(bulk.size(), single.size());
  EXPECT_EQ(bulk.data(), single.data());
  // The lazy index rebuilds correctly after the bulk append.
  EXPECT_TRUE(bulk.HasRow(Tuple{50, 150}));
  EXPECT_FALSE(bulk.HasRow(Tuple{50, 151}));
  // Zero-row append is a no-op and must not invalidate anything.
  bulk.AppendRowsUnchecked(nullptr, 0);
  EXPECT_EQ(bulk.size(), 100u);
}

TEST(RelationEdge, PrepareIndexAllowsConcurrentHasRow) {
  DbRelation r({0, 1});
  std::vector<int> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(i);
    rows.push_back(i + 1);
  }
  r.AppendRowsUnchecked(rows.data(), 2000);
  r.PrepareIndex();  // build the lazy index before readers fan out
  std::vector<std::thread> threads;
  std::atomic<int> hits{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&r, &hits, t] {
      for (int i = t; i < 2000; i += 4) {
        if (r.HasRow(Tuple{i, i + 1})) hits.fetch_add(1);
        if (r.HasRow(Tuple{i, i + 2})) hits.fetch_add(1000000);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(hits.load(), 2000);
}

TEST(RelationEdge, SelfJoinAndProjectOnEmpty) {
  DbRelation empty({3, 5});
  DbRelation projected = Project(empty, {5});
  EXPECT_TRUE(projected.empty());
  EXPECT_EQ(projected.schema(), (std::vector<int>{5}));
  EXPECT_TRUE(SelectEquals(empty, 3, 7).empty());
}

}  // namespace
}  // namespace cspdb
