// Property tests for the maximal RPQ rewriting: a view word is accepted
// iff every expansion lies inside the query language. The reference
// decision is computed independently through automata algebra
// (concatenate the view automata, test containment in the query).

#include <gtest/gtest.h>

#include <vector>

#include "rpq/nfa.h"
#include "rpq/regex.h"
#include "views/rewriting.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// NFA for L(def V_{w1}) ... L(def V_{wl}) over the base alphabet.
Nfa ConcatenationOfViews(const ViewSetting& setting,
                         const std::vector<int>& word) {
  std::vector<Regex> parts;
  for (int i : word) parts.push_back(setting.views[i].definition);
  return Nfa::FromRegex(Regex::Concat(std::move(parts)),
                        static_cast<int>(setting.alphabet.size()));
}

// L(sub) contained in L(super)?
bool Contained(const Nfa& sub, const Dfa& super) {
  return Determinize(sub).Product(super.Complement(), true).IsEmpty();
}

// Enumerates view words up to the length bound and cross-checks the
// rewriting against the independent containment test.
void CheckSetting(const ViewSetting& setting, int max_len) {
  Dfa rewriting = MaximalRpqRewriting(setting);
  Dfa query = Determinize(Nfa::FromRegex(
      setting.query, static_cast<int>(setting.alphabet.size())));
  int k = static_cast<int>(setting.views.size());
  std::vector<int> word;
  // Iterate all words over the view alphabet of length <= max_len.
  for (int len = 0; len <= max_len; ++len) {
    std::vector<int> idx(len, 0);
    while (true) {
      word.assign(idx.begin(), idx.end());
      bool accepted = rewriting.Accepts(word);
      bool expansions_inside =
          Contained(ConcatenationOfViews(setting, word), query);
      EXPECT_EQ(accepted, expansions_inside)
          << "word length " << len;
      // Advance.
      int pos = len - 1;
      while (pos >= 0 && ++idx[pos] == k) idx[pos--] = 0;
      if (pos < 0) break;
      if (len == 0) break;
    }
    if (len == 0 && k == 0) break;
  }
}

TEST(RewritingProperty, ChainViews) {
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("ab", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("(ab)*b?", setting.alphabet);
  CheckSetting(setting, 3);
}

TEST(RewritingProperty, StarViews) {
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a+", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("a*b", setting.alphabet);
  CheckSetting(setting, 3);
}

TEST(RewritingProperty, DisjunctiveViews) {
  ViewSetting setting;
  setting.alphabet = {"a", "b", "c"};
  setting.views.push_back({"V0", ParseRegex("a|b", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("c", setting.alphabet)});
  setting.query = ParseRegex("(a|b)c|a", setting.alphabet);
  CheckSetting(setting, 3);
}

TEST(RewritingProperty, RandomSettings) {
  Rng rng(23);
  const std::vector<std::string> alphabet{"a", "b"};
  const std::vector<std::string> patterns{"a",  "b",   "ab", "a|b",
                                          "a*", "ab*", "ba"};
  for (int trial = 0; trial < 6; ++trial) {
    ViewSetting setting;
    setting.alphabet = alphabet;
    for (int v = 0; v < 2; ++v) {
      std::string pattern =
          patterns[rng.UniformInt(0, static_cast<int>(patterns.size()) -
                                         1)];
      setting.views.push_back(
          {"V" + std::to_string(v), ParseRegex(pattern, alphabet)});
    }
    setting.query = ParseRegex(
        patterns[rng.UniformInt(0, static_cast<int>(patterns.size()) - 1)],
        alphabet);
    CheckSetting(setting, 3);
  }
}

}  // namespace
}  // namespace cspdb
