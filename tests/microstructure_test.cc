// Tests for the microstructure view of binary CSPs.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/microstructure.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Microstructure, EdgesReflectCompatibility) {
  // Two variables, values {0,1}, constraint x0 != x1.
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 1}, {{0, 1}, {1, 0}});
  Graph g = Microstructure(csp);
  ASSERT_EQ(g.n, 4);
  EXPECT_TRUE(g.HasEdge(0, 3));   // x0=0 with x1=1
  EXPECT_TRUE(g.HasEdge(1, 2));   // x0=1 with x1=0
  EXPECT_FALSE(g.HasEdge(0, 2));  // x0=0 with x1=0
  EXPECT_FALSE(g.HasEdge(0, 1));  // same variable
}

TEST(Microstructure, UnaryConstraintsIsolateVertices) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0}, {{1}});
  Graph g = Microstructure(csp);
  // x0=0 is infeasible: no edges at vertex 0.
  EXPECT_TRUE(g.adj[0].empty());
  EXPECT_FALSE(g.adj[1].empty());
}

TEST(Microstructure, UnconstrainedPairsFullyConnected) {
  CspInstance csp(2, 3);
  Graph g = Microstructure(csp);
  EXPECT_EQ(g.NumEdges(), 9);  // 3 x 3 assignments compatible
}

TEST(Microstructure, CliqueSearchAgreesWithSolver) {
  Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 7, 0.5, &rng);
    auto clique = SolveViaMicrostructureClique(csp);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(clique.has_value(), solver.Solve().has_value()) << trial;
    if (clique.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*clique)) << trial;
    }
  }
}

TEST(Microstructure, ColoringInstances) {
  CspInstance odd = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  EXPECT_FALSE(SolveViaMicrostructureClique(odd).has_value());
  CspInstance even = ToCspInstance(CycleGraph(6), CliqueGraph(2));
  EXPECT_TRUE(SolveViaMicrostructureClique(even).has_value());
}

TEST(Microstructure, SingleVariableUnary) {
  CspInstance csp(1, 3);
  csp.AddConstraint({0}, {{2}});
  auto solution = SolveViaMicrostructureClique(csp);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ((*solution)[0], 2);
  csp.AddConstraint({0}, {{1}});  // intersects to empty
  EXPECT_FALSE(SolveViaMicrostructureClique(csp).has_value());
}

}  // namespace
}  // namespace cspdb
