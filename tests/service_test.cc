// Unit tests for the serving layer (ISSUE 5): cache semantics (TTL,
// invalidation, byte budget, negative caching), admission control,
// deadline shedding, destructor drain, and the static-storage /
// exit-ordering regression for services built on ThreadPool::Global().

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "csp/instance.h"
#include "exec/thread_pool.h"
#include "gen/generators.h"
#include "service/result_cache.h"
#include "service/server.h"
#include "service/workload.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

// n variables, pairwise distinct, d values: satisfiable iff n <= d.
// With n > d this is the pigeonhole instance — exponential for
// backtracking search, the deterministic "slow engine" of these tests.
CspInstance AllDifferent(int n, int d) {
  std::vector<Tuple> neq;
  for (int x = 0; x < d; ++x) {
    for (int y = 0; y < d; ++y) {
      if (x != y) neq.push_back({x, y});
    }
  }
  CspInstance csp(n, d);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) csp.AddConstraint({u, v}, neq);
  }
  return csp;
}

ServiceRequest SolveRequest(CspInstance csp) {
  return SolveCspRequest{std::move(csp)};
}

// `k` disjoint directed 3-cycles with identical not-equal constraints
// over 3 values (3-colorable, trivially solvable). Every vertex occurs
// once at scope position 0 and once at position 1 with identical edge
// content, so color refinement cannot split anything and the canonical
// labeling search must branch 3k * 3(k-1) * ... ways — past its leaf
// budget for k >= 5. The deterministic "pathologically symmetric"
// instance of these tests.
CspInstance DisjointTriangles(int k) {
  std::vector<Tuple> neq = {{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}};
  CspInstance csp(3 * k, 3);
  for (int c = 0; c < k; ++c) {
    const int base = 3 * c;
    csp.AddConstraint({base, base + 1}, neq);
    csp.AddConstraint({base + 1, base + 2}, neq);
    csp.AddConstraint({base + 2, base}, neq);
  }
  return csp;
}

// Parks a blocking task on `pool`'s worker and returns once the worker
// has actually picked it up (the pool pops LIFO, so without the ack a
// later submission could run first).
void OccupyWorker(exec::ThreadPool* pool, std::shared_future<void> gate) {
  std::promise<void> started;
  std::future<void> started_future = started.get_future();
  pool->Submit([gate, &started] {
    started.set_value();
    gate.wait();
  });
  started_future.wait();
}

TEST(ServiceTest, RepeatAndIsomorphicRequestsHitTheCache) {
  CspdbService service;
  Rng rng(7);
  CspInstance csp = RandomBinaryCsp(8, 3, 10, 0.3, &rng);

  Response first = service.Handle(SolveRequest(csp));
  ASSERT_EQ(first.status, StatusCode::kOk);
  EXPECT_FALSE(first.cache_hit);

  Response repeat = service.Handle(SolveRequest(csp));
  ASSERT_EQ(repeat.status, StatusCode::kOk);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_EQ(std::get<CspAnswer>(first.answer).solution,
            std::get<CspAnswer>(repeat.answer).solution);

  // An isomorphic copy (variables reversed) hits too, and its answer is
  // valid for *its* labeling.
  CspInstance renamed(csp.num_variables(), csp.num_values());
  const int n = csp.num_variables();
  for (const Constraint& c : csp.constraints()) {
    std::vector<int> scope;
    for (int v : c.scope) scope.push_back(n - 1 - v);
    renamed.AddConstraint(std::move(scope), c.allowed);
  }
  Response iso = service.Handle(SolveRequest(renamed));
  ASSERT_EQ(iso.status, StatusCode::kOk);
  EXPECT_TRUE(iso.cache_hit);
  const CspAnswer& answer = std::get<CspAnswer>(iso.answer);
  ASSERT_TRUE(answer.solution.has_value());
  EXPECT_TRUE(renamed.IsSolution(*answer.solution));

  EXPECT_EQ(service.stats().engine_invocations, 1);
  EXPECT_EQ(service.stats().cache_hits, 2);
}

TEST(ServiceTest, NegativeAnswersAreCached) {
  CspdbService service;
  // Unsatisfiable: 3 pigeons, 2 holes.
  ServiceRequest request = SolveRequest(AllDifferent(3, 2));
  Response first = service.Handle(request);
  ASSERT_EQ(first.status, StatusCode::kOk);
  EXPECT_FALSE(std::get<CspAnswer>(first.answer).solution.has_value());

  Response repeat = service.Handle(request);
  ASSERT_EQ(repeat.status, StatusCode::kOk);
  EXPECT_TRUE(repeat.cache_hit);
  EXPECT_FALSE(std::get<CspAnswer>(repeat.answer).solution.has_value());
  EXPECT_EQ(service.stats().engine_invocations, 1);
}

TEST(ServiceTest, InvalidateKindForcesRecompute) {
  CspdbService service;
  Rng rng(11);
  ServiceRequest request = SolveRequest(RandomBinaryCsp(8, 3, 10, 0.3, &rng));
  EXPECT_EQ(service.Handle(request).status, StatusCode::kOk);
  service.InvalidateKind(RequestKind::kSolveCsp);
  Response after = service.Handle(request);
  EXPECT_EQ(after.status, StatusCode::kOk);
  EXPECT_FALSE(after.cache_hit);
  EXPECT_EQ(service.stats().engine_invocations, 2);
}

TEST(ServiceTest, CacheCanBeDisabled) {
  ServiceOptions options;
  options.enable_cache = false;
  CspdbService service(options);
  Rng rng(13);
  ServiceRequest request = SolveRequest(RandomBinaryCsp(8, 3, 10, 0.3, &rng));
  service.Handle(request);
  Response repeat = service.Handle(request);
  EXPECT_FALSE(repeat.cache_hit);
  EXPECT_EQ(service.stats().engine_invocations, 2);
  EXPECT_EQ(service.stats().cache_hits, 0);
}

TEST(ServiceTest, HighlySymmetricInstanceDegradesToUncacheable) {
  // Five identical disjoint triangles: the canonical labeling search
  // blows its leaf budget, so the fingerprint is inexact and the request
  // bypasses cache and single-flight (soundness over hit rate).
  CspdbService service;
  ServiceRequest request = SolveRequest(DisjointTriangles(5));
  Response first = service.Handle(request);
  ASSERT_EQ(first.status, StatusCode::kOk);
  EXPECT_TRUE(std::get<CspAnswer>(first.answer).solution.has_value());
  Response repeat = service.Handle(request);
  ASSERT_EQ(repeat.status, StatusCode::kOk);
  EXPECT_FALSE(repeat.cache_hit);
  EXPECT_EQ(service.stats().uncacheable, 2);
  EXPECT_EQ(service.stats().engine_invocations, 2);
}

// --- ResultCache unit tests (deterministic timestamps) ---

std::shared_ptr<const EngineAnswer> RowsOfBytes(int ints) {
  RowsAnswer rows;
  rows.arity = 1;
  rows.num_rows = ints;
  rows.rows.assign(ints, 42);
  return std::make_shared<const EngineAnswer>(std::move(rows));
}

TEST(ResultCacheTest, TtlExpiresEntries) {
  CacheConfig config;
  config.ttl_ns[static_cast<int>(RequestKind::kSolveCsp)] = 100;
  ResultCache cache(config);
  Fingerprint key{1, 2, true};
  cache.Insert(key, RequestKind::kSolveCsp, RowsOfBytes(4), /*now_ns=*/0);
  EXPECT_NE(cache.Lookup(key, RequestKind::kSolveCsp, 50), nullptr);
  EXPECT_EQ(cache.Lookup(key, RequestKind::kSolveCsp, 150), nullptr);
  EXPECT_EQ(cache.stats().expirations, 1);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(ResultCacheTest, PerKindInvalidation) {
  ResultCache cache(CacheConfig{});
  Fingerprint csp_key{1, 2, true};
  Fingerprint cq_key{3, 4, true};
  cache.Insert(csp_key, RequestKind::kSolveCsp, RowsOfBytes(4), 0);
  cache.Insert(cq_key, RequestKind::kEvalCq, RowsOfBytes(4), 0);
  cache.InvalidateKind(RequestKind::kSolveCsp);
  EXPECT_EQ(cache.Lookup(csp_key, RequestKind::kSolveCsp, 1), nullptr);
  EXPECT_NE(cache.Lookup(cq_key, RequestKind::kEvalCq, 1), nullptr);
}

TEST(ResultCacheTest, ByteBudgetDrivesLruEviction) {
  CacheConfig config;
  config.max_bytes = 4096;
  config.num_shards = 1;
  ResultCache cache(config);
  // Each entry ~128B overhead + 400B payload; ~7 fit in 4096.
  for (uint64_t i = 0; i < 32; ++i) {
    cache.Insert({i, i, true}, RequestKind::kEvalCq, RowsOfBytes(100), 0);
    EXPECT_LE(cache.stats().bytes, config.max_bytes) << "after insert " << i;
  }
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.entries, 0);
  // Oldest gone, newest resident.
  EXPECT_EQ(cache.Lookup({0, 0, true}, RequestKind::kEvalCq, 1), nullptr);
  EXPECT_NE(cache.Lookup({31, 31, true}, RequestKind::kEvalCq, 1), nullptr);
}

TEST(ResultCacheTest, OversizedEntryIsDropped) {
  CacheConfig config;
  config.max_bytes = 1024;
  config.num_shards = 1;
  ResultCache cache(config);
  cache.Insert({9, 9, true}, RequestKind::kEvalCq, RowsOfBytes(10000), 0);
  EXPECT_EQ(cache.Lookup({9, 9, true}, RequestKind::kEvalCq, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCacheTest, InexactKeysNeverStoredOrHit) {
  ResultCache cache(CacheConfig{});
  Fingerprint inexact{5, 6, false};
  cache.Insert(inexact, RequestKind::kSolveCsp, RowsOfBytes(4), 0);
  EXPECT_EQ(cache.Lookup(inexact, RequestKind::kSolveCsp, 1), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

// --- admission / deadline behaviour ---

TEST(ServiceTest, AdmissionRejectsBeyondMaxPending) {
  exec::ThreadPool pool(1);
  // Occupy the pool's only worker so admitted submissions stay pending.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  OccupyWorker(&pool, gate);

  ServiceOptions options;
  options.pool = &pool;
  options.max_pending = 2;
  Rng rng(17);
  CspInstance csp = RandomBinaryCsp(6, 3, 7, 0.3, &rng);
  {
    CspdbService service(options);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 5; ++i) {
      futures.push_back(service.Submit(SolveRequest(csp)));
    }
    // Beyond max_pending the service rejects immediately, without
    // touching the (blocked) pool.
    int rejected = 0;
    for (int i = 2; i < 5; ++i) {
      ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
                std::future_status::ready);
      if (futures[i].get().status == StatusCode::kRejected) ++rejected;
    }
    EXPECT_EQ(rejected, 3);
    EXPECT_EQ(service.stats().rejected, 3);

    release.set_value();
    EXPECT_EQ(futures[0].get().status, StatusCode::kOk);
    EXPECT_EQ(futures[1].get().status, StatusCode::kOk);
  }  // service drains before the pool is destroyed
}

TEST(ServiceTest, DeadlinePassedWhileQueuedShedsExplicitly) {
  exec::ThreadPool pool(1);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  OccupyWorker(&pool, gate);

  ServiceOptions options;
  options.pool = &pool;
  Rng rng(19);
  CspInstance csp = RandomBinaryCsp(6, 3, 7, 0.3, &rng);
  {
    CspdbService service(options);
    std::future<Response> future =
        service.Submit(SolveRequest(csp), /*timeout_ns=*/1'000'000);  // 1ms
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    release.set_value();
    Response response = future.get();
    EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
    EXPECT_EQ(service.stats().shed_deadline, 1);
    EXPECT_EQ(service.stats().engine_invocations, 0);
  }
}

TEST(ServiceTest, ExpiredDeadlineShedsBeforeTheEngine) {
  CspdbService service;
  Rng rng(23);
  Response response =
      service.Handle(SolveRequest(RandomBinaryCsp(6, 3, 7, 0.3, &rng)),
                     /*timeout_ns=*/1);
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().engine_invocations, 0);
}

TEST(ServiceTest, NodeBudgetAbortsSearchMidEngine) {
  // Pigeonhole 11-into-10 is exponential; a small node budget aborts the
  // search deterministically (no wall-clock dependence) and the service
  // reports the shed explicitly. Nothing is cached for the aborted run.
  ServiceOptions options;
  options.solver_node_limit = 200;
  CspdbService service(options);
  ServiceRequest request = SolveRequest(AllDifferent(11, 10));
  Response response = service.Handle(request);
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().engine_invocations, 1);
  Response again = service.Handle(request);
  EXPECT_EQ(again.status, StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(service.stats().engine_invocations, 2);
}

TEST(ServiceTest, DeadlineCancelsSolverMidSearch) {
  CspdbService service;
  // Exponential instance, 50ms budget: the cancellation token stops the
  // search long before it completes.
  Response response = service.Handle(SolveRequest(AllDifferent(40, 39)),
                                     /*timeout_ns=*/50'000'000);
  EXPECT_EQ(response.status, StatusCode::kDeadlineExceeded);
  EXPECT_GE(service.stats().shed_deadline, 1);
}

TEST(ServiceTest, DestructorDrainsInFlightSubmissions) {
  exec::ThreadPool pool(2);
  std::vector<std::future<Response>> futures;
  Rng rng(29);
  {
    ServiceOptions options;
    options.pool = &pool;
    CspdbService service(options);
    for (int i = 0; i < 40; ++i) {
      futures.push_back(
          service.Submit(SolveRequest(RandomBinaryCsp(7, 3, 8, 0.3, &rng))));
    }
    // Destroyed with work in flight: the destructor must block until all
    // 40 submissions completed (otherwise their lambdas would touch a
    // dead service, and the pool destructor would CHECK-fail on
    // non-empty queues).
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(f.get().status, StatusCode::kOk);
  }
}

TEST(ServiceTest, CacheBudgetHoldsUnderWorkloadReplay) {
  ServiceOptions options;
  options.cache.max_bytes = 16 << 10;
  options.cache.num_shards = 2;
  CspdbService service(options);
  WorkloadOptions workload;
  workload.num_requests = 150;
  workload.pool_size = 8;
  workload.seed = 5;
  for (ServiceRequest& request : GenerateRequestStream(workload)) {
    ASSERT_EQ(service.Handle(request).status, StatusCode::kOk);
    ASSERT_LE(service.cache().stats().bytes, options.cache.max_bytes);
  }
  EXPECT_GT(service.stats().cache_hits, 0);
}

// queue_wait_ns contract (ISSUE 8 satellite): latency_ns covers
// handling only; the time an async submission spends queued behind a
// busy worker is reported separately in queue_wait_ns, so the two sum to
// the end-to-end latency the caller observed.
TEST(ServiceTest, QueueWaitIsReportedSeparatelyFromLatency) {
  exec::ThreadPool pool(1);
  ServiceOptions options;
  options.pool = &pool;
  options.enable_cache = false;  // both requests take the engine path
  CspdbService service(options);

  // Park the only worker so the submission measurably queues.
  std::promise<void> release;
  OccupyWorker(&pool, release.get_future().share());
  Rng rng(41);
  std::future<Response> queued =
      service.Submit(SolveRequest(RandomBinaryCsp(8, 3, 10, 0.3, &rng)));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();

  Response response = queued.get();
  ASSERT_EQ(response.status, StatusCode::kOk);
  // Queued behind the parked worker for >= the sleep; handling itself is
  // far quicker than the wait on this trivial instance.
  EXPECT_GE(response.queue_wait_ns, 15'000'000);
  EXPECT_GT(response.latency_ns, 0);
  EXPECT_LT(response.latency_ns, response.queue_wait_ns);
}

TEST(ServiceTest, SynchronousHandleHasZeroQueueWait) {
  CspdbService service;
  Rng rng(43);
  Response response =
      service.Handle(SolveRequest(RandomBinaryCsp(8, 3, 10, 0.3, &rng)));
  ASSERT_EQ(response.status, StatusCode::kOk);
  EXPECT_EQ(response.queue_wait_ns, 0);
  EXPECT_GT(response.latency_ns, 0);
}

// Stats-store integration (ISSUE 8 tentpole): repeated requests with the
// same canonical fingerprint accumulate outcome history queryable by
// later identical requests, with the cache disposition recorded per run.
TEST(ServiceTest, StatsStoreRecordsOutcomesByFingerprint) {
  CspdbService service;
  Rng rng(47);
  CspInstance csp = RandomBinaryCsp(8, 3, 10, 0.3, &rng);
  ASSERT_EQ(service.Handle(SolveRequest(csp)).status, StatusCode::kOk);
  ASSERT_EQ(service.Handle(SolveRequest(csp)).status, StatusCode::kOk);

  // Both requests canonicalize to one fingerprint.
  EXPECT_EQ(service.stats_store().size(), 1u);
  const std::string dump = service.stats_store().DumpJson();
  EXPECT_NE(dump.find("\"count\": 2"), std::string::npos);
  // First outcome was an engine run (miss), the repeat a cache hit.
  EXPECT_NE(
      dump.find("\"cache_disposition\": " +
                std::to_string(static_cast<int>(CacheDisposition::kHit))),
      std::string::npos);
  EXPECT_NE(
      dump.find("\"cache_disposition\": " +
                std::to_string(static_cast<int>(CacheDisposition::kMiss))),
      std::string::npos);

  // A different request gets its own key.
  CspInstance other = RandomBinaryCsp(9, 3, 12, 0.3, &rng);
  ASSERT_EQ(service.Handle(SolveRequest(other)).status, StatusCode::kOk);
  EXPECT_EQ(service.stats_store().size(), 2u);
}

// Exit-ordering regression (ISSUE 5 satellite): a service with static
// storage duration, backed by the leaked ThreadPool::Global(), must let
// the process exit cleanly — its destructor (run during static
// teardown) drains via Global()'s still-alive workers, and any spans
// emitted after the tracer's atexit flush are dropped, not crashed on.
// The assertion is the test *binary* exiting 0 after this test ran.
TEST(ServiceTest, StaticStorageServiceSurvivesProcessExit) {
  static CspdbService service;
  Rng rng(31);
  std::future<Response> future =
      service.Submit(SolveRequest(RandomBinaryCsp(7, 3, 8, 0.3, &rng)));
  EXPECT_EQ(future.get().status, StatusCode::kOk);
  // Leave one more submission racing process teardown paths: it still
  // completes inside the static destructor's drain.
  service.Submit(SolveRequest(RandomBinaryCsp(7, 3, 8, 0.3, &rng)));
}

}  // namespace
}  // namespace cspdb::service
