// Differential tests pinning the optimized word-packed kernels to the
// frozen pre-optimization references, on the repo's 250-seed fuzz corpus
// (the same seeded recipes as analysis_fuzz_test.cc):
//
//   * EnforceGac / EnforceSingletonArcConsistency (bitset domains,
//     compact-table support masks) vs the byte-map tuple-scanning
//     kernels in consistency/reference_gac.h — identical consistency
//     verdicts, identical fixpoint domains, identical pruning counts.
//   * NaturalJoin / Semijoin / Project / JoinAll on the flat-storage
//     DbRelation vs the Tuple-per-row kernels in db/reference_join.h —
//     identical schemas and row sets.
//
// Revision counters are deliberately NOT compared: the engines schedule
// revisions differently, and GAC-fixpoint uniqueness makes the domains
// the meaningful contract. On wipeout the partially pruned domains are
// order-dependent, so domains are compared only for consistent runs.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/arc_consistency.h"
#include "consistency/reference_gac.h"
#include "csp/convert.h"
#include "csp/instance.h"
#include "db/algebra.h"
#include "db/reference_join.h"
#include "db/relation.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// The three CSP-producing corpus recipes of analysis_fuzz_test.cc.
CspInstance BinaryCorpusInstance(uint64_t seed) {
  Rng rng(1000 + seed);
  int n = 6 + static_cast<int>(seed % 5);
  int d = 2 + static_cast<int>(seed % 3);
  int max_constraints = n * (n - 1) / 2;
  int m = std::min(max_constraints, n + static_cast<int>(seed % n));
  double tightness = 0.15 + 0.04 * static_cast<double>(seed % 10);
  return RandomBinaryCsp(n, d, m, tightness, &rng);
}

CspInstance TreewidthCorpusInstance(uint64_t seed) {
  Rng rng(7000 + seed);
  int n = 8 + static_cast<int>(seed % 6);
  int k = 2 + static_cast<int>(seed % 2);
  int d = 2 + static_cast<int>(seed % 3);
  double tightness = 0.1 + 0.05 * static_cast<double>(seed % 8);
  return RandomTreewidthCsp(n, k, d, tightness, 0.85, &rng);
}

CspInstance HomCorpusInstance(uint64_t seed) {
  Rng rng(31000 + seed);
  Structure a = RandomDigraph(5 + static_cast<int>(seed % 3), 0.35, &rng);
  Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
  return ToCspInstance(a, b);
}

void ExpectSameDomains(const AcResult& fast, const ReferenceAcResult& ref,
                       const CspInstance& csp, const std::string& label) {
  ASSERT_EQ(fast.domains.size(), ref.domains.size()) << label;
  for (int v = 0; v < csp.num_variables(); ++v) {
    for (int d = 0; d < csp.num_values(); ++d) {
      EXPECT_EQ(fast.domains[v].Test(d), ref.domains[v][d] != 0)
          << label << " variable " << v << " value " << d;
    }
  }
}

void ExpectGacAgrees(const CspInstance& csp, const std::string& label) {
  AcResult fast = EnforceGac(csp);
  ReferenceAcResult ref = ReferenceEnforceGac(csp);
  ASSERT_EQ(fast.consistent, ref.consistent) << label;
  if (fast.consistent) {
    ExpectSameDomains(fast, ref, csp, label);
    // Both engines prune each dead (variable, value) pair exactly once,
    // and the fixpoint is unique.
    EXPECT_EQ(fast.prunings, ref.prunings) << label;
  }
}

void ExpectSacAgrees(const CspInstance& csp, const std::string& label) {
  AcResult fast = EnforceSingletonArcConsistency(csp);
  ReferenceAcResult ref = ReferenceEnforceSingletonArcConsistency(csp);
  ASSERT_EQ(fast.consistent, ref.consistent) << label;
  if (fast.consistent) {
    ExpectSameDomains(fast, ref, csp, label);
    EXPECT_EQ(fast.prunings, ref.prunings) << label;
  }
}

TEST(KernelDifferential, GacMatchesReferenceOnBinaryCorpus) {
  for (uint64_t seed = 0; seed < 120; ++seed) {
    ExpectGacAgrees(BinaryCorpusInstance(seed),
                    "binary seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, GacMatchesReferenceOnTreewidthCorpus) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    ExpectGacAgrees(TreewidthCorpusInstance(seed),
                    "treewidth seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, GacMatchesReferenceOnHomCorpus) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    ExpectGacAgrees(HomCorpusInstance(seed),
                    "hom seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, SacMatchesReferenceOnBinaryCorpus) {
  // Every third seed: the reference SAC rebuilds a full instance per
  // (variable, value) probe, so the full corpus would dominate the suite.
  for (uint64_t seed = 0; seed < 120; seed += 3) {
    ExpectSacAgrees(BinaryCorpusInstance(seed),
                    "binary seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, SacMatchesReferenceOnTreewidthCorpus) {
  for (uint64_t seed = 0; seed < 60; seed += 3) {
    ExpectSacAgrees(TreewidthCorpusInstance(seed),
                    "treewidth seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, GacMatchesReferenceOnDuplicateScopes) {
  // Repeated scope variables exercise the support/killer mask split: a
  // tuple whose repeated positions disagree supports nothing but must
  // still die when either of its values is pruned.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(91000 + seed);
    int n = 4 + static_cast<int>(seed % 3);
    int d = 2 + static_cast<int>(seed % 3);
    CspInstance csp(n, d);
    int m = 4 + static_cast<int>(seed % 5);
    for (int c = 0; c < m; ++c) {
      int arity = rng.UniformInt(2, 3);
      std::vector<int> scope;
      for (int q = 0; q < arity; ++q) scope.push_back(rng.UniformInt(0, n - 1));
      std::vector<Tuple> allowed;
      int num_tuples = rng.UniformInt(1, 2 * d);
      for (int t = 0; t < num_tuples; ++t) {
        Tuple tuple;
        for (int q = 0; q < arity; ++q) {
          tuple.push_back(rng.UniformInt(0, d - 1));
        }
        allowed.push_back(std::move(tuple));
      }
      csp.AddConstraint(std::move(scope), std::move(allowed));
    }
    ExpectGacAgrees(csp, "dup seed " + std::to_string(seed));
    ExpectSacAgrees(csp, "dup seed " + std::to_string(seed));
  }
}

TEST(KernelDifferential, GacMatchesReferenceOnWideMasksAndDomains) {
  // Support masks are bitsets over a constraint's tuple list and domains
  // are bitsets over values; the corpora above keep both to a word or
  // two, so the SIMD word kernels never leave their scalar tails. These
  // instances push tuple counts past 500 (several 4-word AVX2 blocks
  // plus a remainder) and domains past 64 values, running the
  // multi-block and boundary paths under the differential.
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(64000 + seed);
    const int n = 5;
    const int d = 66 + static_cast<int>(seed % 7);
    CspInstance csp(n, d);
    for (int c = 0; c < 4; ++c) {
      int a = rng.UniformInt(0, n - 1);
      int b = rng.UniformInt(0, n - 2);
      if (b >= a) ++b;
      std::vector<Tuple> allowed;
      int num_tuples = 500 + rng.UniformInt(0, 400);
      for (int t = 0; t < num_tuples; ++t) {
        allowed.push_back(
            {rng.UniformInt(0, d - 1), rng.UniformInt(0, d - 1)});
      }
      csp.AddConstraint({a, b}, std::move(allowed));
    }
    ExpectGacAgrees(csp, "wide seed " + std::to_string(seed));
  }
}

// ---------------------------------------------------------------------------
// Relational kernels.

DbRelation RandomRelation(std::vector<int> schema, int num_values,
                          int num_rows, Rng* rng) {
  DbRelation out(std::move(schema));
  Tuple row(out.arity());
  for (int i = 0; i < num_rows; ++i) {
    for (std::size_t q = 0; q < row.size(); ++q) {
      row[q] = rng->UniformInt(0, num_values - 1);
    }
    out.AddRow(row);
  }
  return out;
}

std::vector<int> RandomSchema(int max_attr, int arity, Rng* rng) {
  // Distinct attributes drawn from [0, max_attr].
  std::vector<int> pool;
  for (int a = 0; a <= max_attr; ++a) pool.push_back(a);
  std::vector<int> schema;
  for (int i = 0; i < arity && !pool.empty(); ++i) {
    int pick = rng->UniformInt(0, static_cast<int>(pool.size()) - 1);
    schema.push_back(pool[pick]);
    pool.erase(pool.begin() + pick);
  }
  return schema;
}

TEST(KernelDifferential, JoinOpsMatchReferenceOnRandomRelations) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(53000 + seed);
    const std::string label = "join seed " + std::to_string(seed);
    int num_values = 2 + static_cast<int>(seed % 4);
    DbRelation r = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 40), &rng);
    DbRelation s = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 40), &rng);
    ReferenceRelation ref_r = ToReferenceRelation(r);
    ReferenceRelation ref_s = ToReferenceRelation(s);

    EXPECT_TRUE(SameRows(NaturalJoin(r, s), ReferenceNaturalJoin(ref_r, ref_s)))
        << label;
    EXPECT_TRUE(SameRows(Semijoin(r, s), ReferenceSemijoin(ref_r, ref_s)))
        << label;

    // Project onto a random nonempty subset of r's schema.
    if (!r.schema().empty()) {
      std::vector<int> attrs;
      for (int a : r.schema()) {
        if (rng.UniformInt(0, 1) == 1) attrs.push_back(a);
      }
      if (attrs.empty()) attrs.push_back(r.schema()[0]);
      EXPECT_TRUE(SameRows(Project(r, attrs), ReferenceProject(ref_r, attrs)))
          << label;
    }
  }
}

TEST(KernelDifferential, JoinAllMatchesReferenceOnConstraintRelations) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const std::string label = "joinall seed " + std::to_string(seed);
    CspInstance csp =
        BinaryCorpusInstance(seed).NormalizedDistinctScopes();
    std::vector<DbRelation> rels = ConstraintsAsRelations(csp);
    std::vector<ReferenceRelation> ref_rels;
    ref_rels.reserve(rels.size());
    for (const DbRelation& r : rels) {
      ref_rels.push_back(ToReferenceRelation(r));
    }
    int64_t peak = 0;
    int64_t ref_peak = 0;
    DbRelation joined = JoinAll(rels, &peak);
    ReferenceRelation ref_joined = ReferenceJoinAll(ref_rels, &ref_peak);
    EXPECT_TRUE(SameRows(joined, ref_joined)) << label;
    // Same join order, same deduplicated inputs: identical intermediates.
    EXPECT_EQ(peak, ref_peak) << label;
  }
}

}  // namespace
}  // namespace cspdb
