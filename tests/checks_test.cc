// Failure-injection tests: the library aborts (CSPDB_CHECK) on contract
// violations rather than proceeding with corrupt state. Death tests pin
// down that the guards actually fire.

#include <gtest/gtest.h>

#include "boolean/horn_sat.h"
#include "csp/instance.h"
#include "relational/homomorphism.h"
#include "datalog/program.h"
#include "relational/structure.h"
#include "rpq/regex.h"

namespace cspdb {
namespace {

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, DuplicateRelationSymbol) {
  Vocabulary voc;
  voc.AddSymbol("E", 2);
  EXPECT_DEATH(voc.AddSymbol("E", 3), "duplicate relation symbol");
}

TEST(CheckDeathTest, TupleArityMismatch) {
  Vocabulary voc;
  voc.AddSymbol("E", 2);
  Structure s(voc, 3);
  EXPECT_DEATH(s.AddTuple(0, {0, 1, 2}), "arity mismatch");
}

TEST(CheckDeathTest, TupleElementOutOfRange) {
  Vocabulary voc;
  voc.AddSymbol("E", 2);
  Structure s(voc, 2);
  EXPECT_DEATH(s.AddTuple(0, {0, 5}), "element out of range");
}

TEST(CheckDeathTest, ConstraintVariableOutOfRange) {
  CspInstance csp(2, 2);
  EXPECT_DEATH(csp.AddConstraint({0, 7}, {{0, 0}}),
               "variable out of range");
}

TEST(CheckDeathTest, ConstraintValueOutOfRange) {
  CspInstance csp(2, 2);
  EXPECT_DEATH(csp.AddConstraint({0, 1}, {{0, 9}}), "value out of range");
}

TEST(CheckDeathTest, UnsafeDatalogRule) {
  DatalogProgram program;
  // Head variable 1 does not occur in the body.
  EXPECT_DEATH(program.AddRule({{"P", {0, 1}}, {{"E", {0, 0}}}, 2}),
               "unsafe rule");
}

TEST(CheckDeathTest, InconsistentPredicateArity) {
  DatalogProgram program;
  program.AddRule({{"P", {0}}, {{"E", {0, 0}}}, 1});
  EXPECT_DEATH(program.AddRule({{"P", {0, 1}}, {{"E", {0, 1}}}, 2}),
               "inconsistent arity");
}

TEST(CheckDeathTest, HornSolverRejectsNonHorn) {
  CnfFormula phi;
  phi.num_variables = 2;
  phi.clauses.push_back({{{0, true}, {1, true}}});  // two positives
  EXPECT_DEATH(SolveHorn(phi), "requires a Horn formula");
}

TEST(CheckDeathTest, MalformedRegex) {
  EXPECT_DEATH(ParseRegex("(ab", {"a", "b"}), "missing '\\)'");
  EXPECT_DEATH(ParseRegex("ax", {"a", "b"}), "unknown symbol");
}

TEST(CheckDeathTest, GoalRequiredBeforeGoalDerived) {
  DatalogProgram program;
  program.AddRule({{"P", {0}}, {{"E", {0, 0}}}, 1});
  EXPECT_DEATH(program.SetGoal("E"), "goal must be an IDB");
}

TEST(CheckDeathTest, StructureOpsVocabularyMismatch) {
  Vocabulary v1, v2;
  v1.AddSymbol("E", 2);
  v2.AddSymbol("F", 2);
  Structure a(v1, 2), b(v2, 2);
  EXPECT_DEATH(IsPartialHomomorphism(a, b, {0, 1}), "CSPDB_CHECK");
}

}  // namespace
}  // namespace cspdb
