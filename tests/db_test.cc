// Tests for the relational algebra, Proposition 2.1 (CSP = join
// evaluation), conjunctive queries, and Propositions 2.2/2.3
// (containment = homomorphism = evaluation).

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "db/algebra.h"
#include "db/containment.h"
#include "db/conjunctive_query.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Algebra, NaturalJoinOnSharedAttribute) {
  DbRelation r({0, 1});
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  DbRelation s({1, 2});
  s.AddRow({2, 5});
  s.AddRow({2, 6});
  DbRelation j = NaturalJoin(r, s);
  EXPECT_EQ(j.schema(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.HasRow({1, 2, 5}));
  EXPECT_TRUE(j.HasRow({1, 2, 6}));
}

TEST(Algebra, JoinWithNoSharedAttributesIsCrossProduct) {
  DbRelation r({0});
  r.AddRow({1});
  r.AddRow({2});
  DbRelation s({1});
  s.AddRow({7});
  DbRelation j = NaturalJoin(r, s);
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.HasRow({1, 7}));
}

TEST(Algebra, ProjectDeduplicates) {
  DbRelation r({0, 1});
  r.AddRow({1, 2});
  r.AddRow({1, 3});
  DbRelation p = Project(r, {0});
  EXPECT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.HasRow({1}));
}

TEST(Algebra, SelectAndSemijoin) {
  DbRelation r({0, 1});
  r.AddRow({1, 2});
  r.AddRow({3, 4});
  EXPECT_EQ(SelectEquals(r, 0, 1).size(), 1u);
  DbRelation s({1});
  s.AddRow({2});
  DbRelation sj = Semijoin(r, s);
  EXPECT_EQ(sj.size(), 1u);
  EXPECT_TRUE(sj.HasRow({1, 2}));
}

TEST(Algebra, SemijoinWithDisjointSchemaKeepsAllIfNonempty) {
  DbRelation r({0});
  r.AddRow({1});
  DbRelation s({1});
  EXPECT_TRUE(Semijoin(r, s).empty());  // s empty
  s.AddRow({9});
  EXPECT_EQ(Semijoin(r, s).size(), 1u);
}

TEST(Algebra, ZeroArityRelations) {
  DbRelation truth({});
  EXPECT_TRUE(truth.empty());
  truth.AddRow(Tuple{});
  EXPECT_EQ(truth.size(), 1u);
  DbRelation r({0});
  r.AddRow({5});
  DbRelation j = NaturalJoin(r, truth);
  EXPECT_EQ(j.size(), 1u);
}

TEST(Proposition21, SolvableIffJoinNonempty) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 7, 0.5, &rng);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(solver.Solve().has_value(), SolvableByJoin(csp)) << trial;
  }
}

TEST(Proposition21, HandlesRepeatedScopes) {
  CspInstance csp(2, 2);
  csp.AddConstraint({0, 0}, {{0, 0}, {0, 1}});  // forces x0 = 0
  csp.AddConstraint({0, 1}, {{1, 0}, {0, 1}});
  EXPECT_TRUE(SolvableByJoin(csp));
  csp.AddConstraint({1}, {{0}});
  EXPECT_FALSE(SolvableByJoin(csp));
}

TEST(Proposition21, UnconstrainedVariables) {
  CspInstance no_constraints(3, 2);
  EXPECT_TRUE(SolvableByJoin(no_constraints));
  CspInstance no_values(3, 0);
  EXPECT_FALSE(SolvableByJoin(no_values));
}

TEST(ConjunctiveQuery, EvaluateSimplePath) {
  // Q(x0, x1) :- E(x0, x2), E(x2, x1): pairs at distance two.
  ConjunctiveQuery q(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  Structure db = PathGraph(3);  // edges both ways between 0-1, 1-2
  DbRelation ans = Evaluate(q, db);
  EXPECT_TRUE(ans.HasRow({0, 2}));
  EXPECT_TRUE(ans.HasRow({2, 0}));
  EXPECT_TRUE(ans.HasRow({0, 0}));  // 0 -> 1 -> 0
  EXPECT_FALSE(ans.HasRow({3, 0}));
}

TEST(ConjunctiveQuery, RepeatedAtomArguments) {
  // Q(x0) :- E(x0, x0): loops.
  ConjunctiveQuery q(1, {0}, {{"E", {0, 0}}});
  Structure db(GraphVocabulary(), 3);
  db.AddTuple(0, {1, 1});
  db.AddTuple(0, {0, 2});
  DbRelation ans = Evaluate(q, db);
  EXPECT_EQ(ans.size(), 1u);
  EXPECT_TRUE(ans.HasRow({1}));
}

TEST(ConjunctiveQuery, MissingPredicateYieldsEmpty) {
  ConjunctiveQuery q(1, {0}, {{"Nope", {0}}});
  Structure db = PathGraph(2);
  EXPECT_TRUE(Evaluate(q, db).empty());
  EXPECT_FALSE(BodySatisfiable(q, db));
}

TEST(ConjunctiveQuery, CanonicalDatabaseHasHeadMarkers) {
  ConjunctiveQuery q(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  Structure canon = q.CanonicalDatabase();
  EXPECT_EQ(canon.domain_size(), 3);
  EXPECT_GE(canon.vocabulary().IndexOf("__P0"), 0);
  EXPECT_TRUE(canon.HasTuple(canon.vocabulary().IndexOf("__P0"), {0}));
  EXPECT_TRUE(canon.HasTuple(canon.vocabulary().IndexOf("__P1"), {1}));
}

TEST(Proposition23, BooleanQueryOfStructureDecidesHomomorphism) {
  Rng rng(59);
  for (int trial = 0; trial < 12; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    EXPECT_EQ(HomomorphismViaQueryEvaluation(a, b),
              FindHomomorphism(a, b).has_value())
        << trial;
  }
}

TEST(Proposition22, ContainmentClassicExample) {
  // Q1(x,y) :- E(x,z), E(z,y)   (distance exactly 2)
  // Q2(x,y) :- E(x,z), E(w,y)   (out-edge from x, in-edge to y)
  // Q1 is contained in Q2 but not conversely.
  ConjunctiveQuery q1(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  ConjunctiveQuery q2(4, {0, 1}, {{"E", {0, 2}}, {"E", {3, 1}}});
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(Proposition22, SelfContainment) {
  ConjunctiveQuery q(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  EXPECT_TRUE(IsContainedIn(q, q));
  EXPECT_TRUE(AreEquivalent(q, q));
}

TEST(Proposition22, EquivalentUpToRedundantAtom) {
  // Q2 has a redundant extra atom E(x, z') — same query.
  ConjunctiveQuery q1(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  ConjunctiveQuery q2(4, {0, 1},
                      {{"E", {0, 2}}, {"E", {2, 1}}, {"E", {0, 3}}});
  EXPECT_TRUE(AreEquivalent(q1, q2));
}

TEST(Proposition22, EvaluationFormulationAgrees) {
  Rng rng(67);
  for (int trial = 0; trial < 10; ++trial) {
    // Random small path-shaped queries over E.
    auto random_query = [&rng]() {
      int extra = rng.UniformInt(1, 2);
      int vars = 2 + extra;
      std::vector<Atom> body;
      int prev = 0;
      for (int i = 0; i < extra; ++i) {
        int next = 2 + i;
        body.push_back({"E", {prev, next}});
        prev = next;
      }
      body.push_back({"E", {prev, 1}});
      if (rng.Bernoulli(0.5)) {
        body.push_back({"E", {0, rng.UniformInt(0, vars - 1)}});
      }
      return ConjunctiveQuery(vars, {0, 1}, std::move(body));
    };
    ConjunctiveQuery q1 = random_query();
    ConjunctiveQuery q2 = random_query();
    EXPECT_EQ(IsContainedIn(q1, q2), IsContainedInViaEvaluation(q1, q2))
        << trial;
  }
}

TEST(Proposition22, BooleanQueriesContainment) {
  // Boolean query of an odd cycle is contained in that of K3's query
  // (any structure with a hom from C5... careful: phi_A true in B iff
  // hom(A,B)). phi_{C5} subsumed by phi_{K3} iff hom(K3 -> C5)? Use
  // Proposition 2.3 directly instead: phi_B contained in phi_A iff
  // hom(A, B).
  Structure c5 = CycleGraph(5);
  Structure k3 = CliqueGraph(3);
  ConjunctiveQuery phi_c5 = ConjunctiveQuery::FromStructure(c5);
  ConjunctiveQuery phi_k3 = ConjunctiveQuery::FromStructure(k3);
  // hom(C5 -> K3) exists, so phi_K3 contained in phi_C5.
  EXPECT_TRUE(IsContainedIn(phi_k3, phi_c5));
  // hom(K3 -> C5) does not exist, so phi_C5 not contained in phi_K3.
  EXPECT_FALSE(IsContainedIn(phi_c5, phi_k3));
}

}  // namespace
}  // namespace cspdb
