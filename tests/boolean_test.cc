// Tests for Section 3's dichotomies: the Schaefer classifier and its
// dedicated solvers (Horn, 2-SAT, affine), the CNF <-> structure
// encoding, and the Hell-Nešetřil graph dichotomy.

#include <gtest/gtest.h>

#include "boolean/affine_sat.h"
#include "boolean/cnf.h"
#include "boolean/hell_nesetril.h"
#include "boolean/horn_sat.h"
#include "boolean/schaefer.h"
#include "boolean/two_sat.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

int64_t BruteForceSatisfiable(const CnfFormula& phi) {
  std::vector<int> a(phi.num_variables);
  for (int code = 0; code < (1 << phi.num_variables); ++code) {
    for (int v = 0; v < phi.num_variables; ++v) a[v] = (code >> v) & 1;
    if (phi.Evaluate(a)) return true;
  }
  return phi.num_variables == 0 && phi.clauses.empty();
}

TEST(Cnf, EvaluateAndShapePredicates) {
  // (x0 | ~x1) & (~x0 | x1 | x2)
  CnfFormula phi;
  phi.num_variables = 3;
  phi.clauses.push_back({{{0, true}, {1, false}}});
  phi.clauses.push_back({{{0, false}, {1, true}, {2, true}}});
  EXPECT_TRUE(phi.Evaluate({1, 1, 0}));
  EXPECT_FALSE(phi.Evaluate({0, 1, 0}));
  EXPECT_FALSE(phi.IsHorn());  // second clause has two positives
  EXPECT_TRUE(phi.IsDualHorn());
  EXPECT_FALSE(phi.Is2Cnf());
  EXPECT_EQ(phi.MaxClauseSize(), 3);
}

TEST(Cnf, StructureEncodingPreservesSatisfiability) {
  Rng rng(7);
  Vocabulary voc = CnfVocabulary(3);
  Structure b = SatTemplate(3);
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula phi = RandomKSat(5, rng.UniformInt(4, 12), 3, &rng);
    Structure a = CnfToStructure(phi, voc);
    EXPECT_EQ(FindHomomorphism(a, b).has_value(),
              BruteForceSatisfiable(phi))
        << trial;
  }
}

TEST(Cnf, HomomorphismsAreModels) {
  Rng rng(11);
  Vocabulary voc = CnfVocabulary(3);
  Structure b = SatTemplate(3);
  CnfFormula phi = RandomKSat(5, 8, 3, &rng);
  Structure a = CnfToStructure(phi, voc);
  auto h = FindHomomorphism(a, b);
  if (h.has_value()) {
    EXPECT_TRUE(phi.Evaluate(*h));
  }
}

TEST(HornSat, SolvesAndReturnsMinimalModel) {
  // (x0) & (~x0 | x1) & (~x1 | ~x2): minimal model {1,1,0}.
  CnfFormula phi;
  phi.num_variables = 3;
  phi.clauses.push_back({{{0, true}}});
  phi.clauses.push_back({{{0, false}, {1, true}}});
  phi.clauses.push_back({{{1, false}, {2, false}}});
  auto model = SolveHorn(phi);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model, (std::vector<int>{1, 1, 0}));
}

TEST(HornSat, DetectsUnsat) {
  // (x0) & (~x0).
  CnfFormula phi;
  phi.num_variables = 1;
  phi.clauses.push_back({{{0, true}}});
  phi.clauses.push_back({{{0, false}}});
  EXPECT_FALSE(SolveHorn(phi).has_value());
}

TEST(HornSat, MatchesBruteForceOnRandomHorn) {
  Rng rng(13);
  for (int trial = 0; trial < 15; ++trial) {
    CnfFormula phi = RandomHorn(6, rng.UniformInt(4, 14), 3, &rng);
    EXPECT_EQ(SolveHorn(phi).has_value(), BruteForceSatisfiable(phi))
        << trial;
  }
}

TEST(TwoSat, SolvesImplicationChain) {
  // (x0 | x1) & (~x1 | x2) & (~x2 | ~x0).
  CnfFormula phi;
  phi.num_variables = 3;
  phi.clauses.push_back({{{0, true}, {1, true}}});
  phi.clauses.push_back({{{1, false}, {2, true}}});
  phi.clauses.push_back({{{2, false}, {0, false}}});
  auto model = SolveTwoSat(phi);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(phi.Evaluate(*model));
}

TEST(TwoSat, DetectsUnsat) {
  // (x0|x0) & (~x0|~x0).
  CnfFormula phi;
  phi.num_variables = 1;
  phi.clauses.push_back({{{0, true}}});
  phi.clauses.push_back({{{0, false}}});
  EXPECT_FALSE(SolveTwoSat(phi).has_value());
}

TEST(TwoSat, MatchesBruteForceOnRandom2Sat) {
  Rng rng(17);
  for (int trial = 0; trial < 15; ++trial) {
    CnfFormula phi = RandomKSat(6, rng.UniformInt(4, 16), 2, &rng);
    EXPECT_EQ(SolveTwoSat(phi).has_value(), BruteForceSatisfiable(phi))
        << trial;
  }
}

TEST(AffineSat, GaussianElimination) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 0: solvable.
  XorSystem sys;
  sys.num_variables = 3;
  sys.clauses.push_back({{0, 1}, 1});
  sys.clauses.push_back({{1, 2}, 1});
  sys.clauses.push_back({{0, 2}, 0});
  auto model = SolveXor(sys);
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(sys.Evaluate(*model));
  // Adding x0 ^ x2 = 1 contradicts.
  sys.clauses.push_back({{0, 2}, 1});
  EXPECT_FALSE(SolveXor(sys).has_value());
}

TEST(AffineSat, EmptyEquationHandling) {
  XorSystem sys;
  sys.num_variables = 2;
  sys.clauses.push_back({{}, 1});
  EXPECT_FALSE(SolveXor(sys).has_value());
  sys.clauses.clear();
  sys.clauses.push_back({{}, 0});
  EXPECT_TRUE(SolveXor(sys).has_value());
}

TEST(AffineSat, RandomDifferentialAgainstBruteForce) {
  Rng rng(19);
  for (int trial = 0; trial < 12; ++trial) {
    XorSystem sys;
    sys.num_variables = 5;
    int m = rng.UniformInt(3, 8);
    for (int i = 0; i < m; ++i) {
      XorClause clause;
      int size = rng.UniformInt(1, 3);
      clause.vars = rng.SampleDistinct(5, size);
      clause.rhs = rng.UniformInt(0, 1);
      sys.clauses.push_back(std::move(clause));
    }
    bool brute = false;
    for (int code = 0; code < 32 && !brute; ++code) {
      std::vector<int> a(5);
      for (int v = 0; v < 5; ++v) a[v] = (code >> v) & 1;
      brute = sys.Evaluate(a);
    }
    EXPECT_EQ(SolveXor(sys).has_value(), brute) << trial;
  }
}

TEST(Schaefer, ClassifiesHornTemplate) {
  SchaeferClassification cls = ClassifyBooleanTemplate(HornTemplate(3));
  EXPECT_TRUE(cls.horn);
  EXPECT_TRUE(cls.Tractable());
  EXPECT_FALSE(cls.one_valid);
}

TEST(Schaefer, ClassifiesTwoSatTemplate) {
  SchaeferClassification cls = ClassifyBooleanTemplate(TwoSatTemplate());
  EXPECT_TRUE(cls.bijunctive);
  EXPECT_FALSE(cls.horn);  // (x | y) is not min-closed
}

TEST(Schaefer, ThreeSatTemplateIsNpComplete) {
  SchaeferClassification cls = ClassifyBooleanTemplate(SatTemplate(3));
  EXPECT_FALSE(cls.Tractable());
  EXPECT_EQ(cls.ToString(), "NP-complete");
}

TEST(Schaefer, ClassifiesAffineTemplate) {
  // Template with x ^ y ^ z = 0 and x ^ y ^ z = 1 relations.
  Vocabulary voc;
  voc.AddSymbol("XOR0", 3);
  voc.AddSymbol("XOR1", 3);
  Structure b(voc, 2);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        b.AddTuple((x ^ y ^ z) == 0 ? 0 : 1, {x, y, z});
      }
    }
  }
  SchaeferClassification cls = ClassifyBooleanTemplate(b);
  EXPECT_TRUE(cls.affine);
  EXPECT_FALSE(cls.bijunctive);
}

TEST(Schaefer, SolveDispatchesHorn) {
  Rng rng(23);
  Vocabulary voc = HornVocabulary(3);
  Structure b = HornTemplate(3);
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula phi = RandomHorn(6, rng.UniformInt(5, 15), 3, &rng);
    Structure a = CnfToStructure(phi, voc);
    BooleanSolveResult result = SolveBooleanCsp(a, b);
    ASSERT_TRUE(result.decided);
    EXPECT_EQ(result.solvable, SolveHorn(phi).has_value()) << trial;
    if (result.solvable) {
      EXPECT_TRUE(phi.Evaluate(result.model));
    }
  }
}

TEST(Schaefer, SolveDispatchesTwoSat) {
  Rng rng(29);
  Vocabulary voc = CnfVocabulary(2);
  Structure b = TwoSatTemplate();
  for (int trial = 0; trial < 10; ++trial) {
    CnfFormula phi = RandomKSat(6, rng.UniformInt(5, 18), 2, &rng);
    Structure a = CnfToStructure(phi, voc);
    BooleanSolveResult result = SolveBooleanCsp(a, b);
    ASSERT_TRUE(result.decided);
    EXPECT_EQ(result.solvable, SolveTwoSat(phi).has_value()) << trial;
    if (result.solvable) {
      EXPECT_TRUE(phi.Evaluate(result.model));
    }
  }
}

TEST(Schaefer, SolveDispatchesAffine) {
  Vocabulary voc;
  voc.AddSymbol("XOR0", 3);
  voc.AddSymbol("XOR1", 3);
  Structure b(voc, 2);
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int z = 0; z < 2; ++z) {
        b.AddTuple((x ^ y ^ z) == 0 ? 0 : 1, {x, y, z});
      }
    }
  }
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Structure a(voc, 5);
    int m = rng.UniformInt(3, 7);
    for (int i = 0; i < m; ++i) {
      std::vector<int> vars = rng.SampleDistinct(5, 3);
      a.AddTuple(rng.UniformInt(0, 1), {vars[0], vars[1], vars[2]});
    }
    BooleanSolveResult result = SolveBooleanCsp(a, b);
    ASSERT_TRUE(result.decided);
    EXPECT_EQ(result.solvable, FindHomomorphism(a, b).has_value())
        << trial;
  }
}

TEST(Schaefer, ZeroValidTemplateAlwaysSolvable) {
  Vocabulary voc;
  voc.AddSymbol("R", 2);
  Structure b(voc, 2);
  b.AddTuple(0, {0, 0});
  b.AddTuple(0, {1, 0});
  Structure a(voc, 3);
  a.AddTuple(0, {0, 1});
  a.AddTuple(0, {1, 2});
  BooleanSolveResult result = SolveBooleanCsp(a, b);
  ASSERT_TRUE(result.decided);
  EXPECT_TRUE(result.solvable);
  EXPECT_TRUE(IsHomomorphism(a, b, result.model));
}

TEST(ClosedUnder, BasicChecks) {
  std::vector<Tuple> implication{{0, 0}, {0, 1}, {1, 1}};  // x -> y
  auto op_and = [](const int* x) { return x[0] & x[1]; };
  auto op_or = [](const int* x) { return x[0] | x[1]; };
  EXPECT_TRUE(ClosedUnder(implication, 2, +op_and));
  EXPECT_TRUE(ClosedUnder(implication, 2, +op_or));
  std::vector<Tuple> parity{{0, 1}, {1, 0}};  // x != y
  EXPECT_FALSE(ClosedUnder(parity, 2, +op_and));
}

TEST(HellNesetril, GraphBuilders) {
  Structure k3 = CliqueGraph(3);
  EXPECT_TRUE(IsSymmetric(k3));
  EXPECT_FALSE(HasLoop(k3));
  EXPECT_FALSE(IsBipartite(k3));
  EXPECT_TRUE(IsBipartite(CycleGraph(6)));
  EXPECT_FALSE(IsBipartite(CycleGraph(7)));
  EXPECT_TRUE(IsBipartite(PathGraph(5)));
  EXPECT_TRUE(HasLoop(CycleGraph(1)));
}

TEST(HellNesetril, LoopTemplateAlwaysColorable) {
  Structure h = MakeUndirectedGraph(2, {{0, 0}, {0, 1}});
  Structure a = CliqueGraph(4);
  HColoringResult result = DecideHColoring(a, h);
  ASSERT_TRUE(result.tractable);
  EXPECT_TRUE(result.colorable);
  EXPECT_TRUE(IsHomomorphism(a, h, result.coloring));
}

TEST(HellNesetril, BipartiteTemplateMatchesTwoColorability) {
  Rng rng(37);
  Structure h = PathGraph(4);  // bipartite with edges
  for (int trial = 0; trial < 10; ++trial) {
    Structure a = RandomUndirectedGraph(6, 0.3, &rng);
    HColoringResult result = DecideHColoring(a, h);
    ASSERT_TRUE(result.tractable);
    EXPECT_EQ(result.colorable, FindHomomorphism(a, h).has_value())
        << trial;
    if (result.colorable) {
      EXPECT_TRUE(IsHomomorphism(a, h, result.coloring));
    }
  }
}

TEST(HellNesetril, EdgelessTemplate) {
  Structure h(GraphVocabulary(), 2);
  Structure edgeless_a(GraphVocabulary(), 3);
  HColoringResult result = DecideHColoring(edgeless_a, h);
  ASSERT_TRUE(result.tractable);
  EXPECT_TRUE(result.colorable);
  Structure with_edge = PathGraph(2);
  result = DecideHColoring(with_edge, h);
  ASSERT_TRUE(result.tractable);
  EXPECT_FALSE(result.colorable);
}

TEST(HellNesetril, NonBipartiteLooplessIsIntractableSide) {
  HColoringResult result =
      DecideHColoring(CycleGraph(5), CliqueGraph(3));
  EXPECT_FALSE(result.tractable);
  // The generic search still answers.
  EXPECT_TRUE(FindHomomorphism(CycleGraph(5), CliqueGraph(3)).has_value());
}

}  // namespace
}  // namespace cspdb
