// Differential guarantee for the serving layer (ISSUE 5 acceptance):
// across fuzz corpora, the service's answers are byte-identical whether a
// request is computed cold, served from cache, coalesced onto another
// caller's run, or handled by a cache-disabled service — and they match
// a direct engine invocation (after the canonical row ordering for
// row-valued answers; for SolveCsp the contract is a valid solution with
// SAT/UNSAT agreement, since "the" solution is only canonical-space
// deterministic).

#include <algorithm>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "datalog/eval.h"
#include "datalog/program.h"
#include "db/conjunctive_query.h"
#include "db/containment.h"
#include "db/relation.h"
#include "gen/generators.h"
#include "service/server.h"
#include "util/rng.h"

namespace cspdb::service {
namespace {

bool AnswersEqual(const EngineAnswer& a, const EngineAnswer& b) {
  if (a.index() != b.index()) return false;
  if (const auto* csp = std::get_if<CspAnswer>(&a)) {
    const auto& other = std::get<CspAnswer>(b);
    return csp->solution == other.solution && csp->complete == other.complete;
  }
  if (const auto* rows = std::get_if<RowsAnswer>(&a)) {
    const auto& other = std::get<RowsAnswer>(b);
    return rows->arity == other.arity && rows->num_rows == other.num_rows &&
           rows->rows == other.rows;
  }
  if (const auto* datalog = std::get_if<DatalogAnswer>(&a)) {
    const auto& other = std::get<DatalogAnswer>(b);
    return datalog->goal_derived == other.goal_derived &&
           datalog->total_idb_facts == other.total_idb_facts &&
           datalog->goal_facts.arity == other.goal_facts.arity &&
           datalog->goal_facts.rows == other.goal_facts.rows;
  }
  return std::get<BoolAnswer>(a).value == std::get<BoolAnswer>(b).value;
}

std::vector<int> SortedFlatRows(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  std::vector<int> flat;
  for (const Tuple& t : tuples) flat.insert(flat.end(), t.begin(), t.end());
  return flat;
}

ConjunctiveQuery SmallRandomCq(int num_variables, int num_atoms, Rng* rng) {
  std::vector<Atom> body;
  std::vector<bool> used(num_variables, false);
  for (int i = 0; i < num_atoms; ++i) {
    const int u = rng->UniformInt(0, num_variables - 1);
    const int v = rng->UniformInt(0, num_variables - 1);
    used[u] = used[v] = true;
    body.push_back({"E", {u, v}});
  }
  for (int v = 0; v < num_variables; ++v) {
    if (!used[v]) body.push_back({"E", {v, 0}});
  }
  return ConjunctiveQuery(num_variables,
                          {rng->UniformInt(0, num_variables - 1),
                           rng->UniformInt(0, num_variables - 1)},
                          std::move(body));
}

// Runs `request` through: a caching service twice (cold + cached), and a
// fully disabled service (direct path). Asserts the three answers are
// byte-identical and returns the cold one.
EngineAnswer AssertPathsAgree(const ServiceRequest& request) {
  CspdbService caching;
  ServiceOptions direct_options;
  direct_options.enable_cache = false;
  direct_options.enable_single_flight = false;
  CspdbService direct(direct_options);

  Response cold = caching.Handle(request);
  Response cached = caching.Handle(request);
  Response uncached = direct.Handle(request);
  EXPECT_EQ(cold.status, StatusCode::kOk);
  EXPECT_EQ(cached.status, StatusCode::kOk);
  EXPECT_EQ(uncached.status, StatusCode::kOk);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(cached.cache_hit);
  EXPECT_TRUE(AnswersEqual(cold.answer, cached.answer));
  EXPECT_TRUE(AnswersEqual(cold.answer, uncached.answer));
  return cold.answer;
}

TEST(ServiceDifferentialTest, SolveCspAgreesWithDirectSolver) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    CspInstance csp = RandomBinaryCsp(10, 3, 14, 0.35, &rng);
    EngineAnswer answer = AssertPathsAgree(SolveCspRequest{csp});

    const CspAnswer& service_answer = std::get<CspAnswer>(answer);
    BacktrackingSolver solver(csp);
    auto direct = solver.Solve();
    ASSERT_EQ(service_answer.solution.has_value(), direct.has_value())
        << "SAT disagreement, seed " << seed;
    if (service_answer.solution.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*service_answer.solution))
          << "invalid solution, seed " << seed;
    }
  }
}

TEST(ServiceDifferentialTest, EvalCqAgreesWithDirectEvaluate) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 3 + 1);
    ConjunctiveQuery q = SmallRandomCq(4, 4, &rng);
    Structure db = RandomDigraph(9, 0.3, &rng);
    EngineAnswer answer = AssertPathsAgree(EvalCqRequest{q, db});

    const DbRelation direct = Evaluate(q, db);
    std::vector<Tuple> tuples;
    for (auto row : direct.rows()) tuples.push_back(row.ToTuple());
    const RowsAnswer& rows = std::get<RowsAnswer>(answer);
    EXPECT_EQ(rows.num_rows, static_cast<int64_t>(direct.size()));
    EXPECT_EQ(rows.rows, SortedFlatRows(std::move(tuples)))
        << "row disagreement, seed " << seed;
  }
}

TEST(ServiceDifferentialTest, DatalogAgreesWithDirectSemiNaive) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed * 5 + 2);
    DatalogProgram program = NonTwoColorabilityProgram();
    Structure edb = RandomDigraph(8, 0.25, &rng);
    EngineAnswer answer = AssertPathsAgree(DatalogFixpointRequest{program, edb});

    const DatalogResult direct = EvaluateSemiNaive(program, edb);
    const DatalogAnswer& datalog = std::get<DatalogAnswer>(answer);
    EXPECT_EQ(datalog.goal_derived, direct.GoalDerived(program))
        << "goal disagreement, seed " << seed;
    const TupleSet& goal_facts = direct.Facts(program.goal());
    EXPECT_EQ(datalog.goal_facts.rows,
              SortedFlatRows({goal_facts.begin(), goal_facts.end()}));
  }
}

TEST(ServiceDifferentialTest, ContainmentAgreesWithDirectCheck) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed * 7 + 5);
    ConjunctiveQuery q1 = SmallRandomCq(4, 3, &rng);
    ConjunctiveQuery q2 = SmallRandomCq(4, 3, &rng);
    EngineAnswer answer = AssertPathsAgree(CheckContainmentRequest{q1, q2});
    EXPECT_EQ(std::get<BoolAnswer>(answer).value, IsContainedIn(q1, q2))
        << "containment disagreement, seed " << seed;
  }
}

TEST(ServiceDifferentialTest, ConcurrentCallersGetByteIdenticalAnswers) {
  // Small instances, real races: whether a caller computes, coalesces,
  // or hits the cache depends on scheduling, but the answer bytes must
  // not — the engine always runs on the canonical instance.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed + 100);
    CspInstance csp = RandomBinaryCsp(12, 4, 20, 0.3, &rng);

    ServiceOptions reference_options;
    reference_options.enable_cache = false;
    reference_options.enable_single_flight = false;
    CspdbService reference(reference_options);
    const Response expected = reference.Handle(SolveCspRequest{csp});
    ASSERT_EQ(expected.status, StatusCode::kOk);

    CspdbService service;
    constexpr int kThreads = 4;
    std::vector<Response> responses(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        responses[i] = service.Handle(SolveCspRequest{csp});
      });
    }
    for (std::thread& t : threads) t.join();
    for (const Response& r : responses) {
      ASSERT_EQ(r.status, StatusCode::kOk);
      EXPECT_TRUE(AnswersEqual(expected.answer, r.answer)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cspdb::service
