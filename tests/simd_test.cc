// Differential fuzz of the dispatched SIMD primitives in util/simd.h
// against the always-compiled simd::scalar oracle. The dispatched
// functions must be bit-for-bit equivalent to their scalar twins on
// every input, whatever backend CSPDB_SIMD selected — these tests are
// what makes the scalar namespace an oracle rather than documentation.
//
// Span lengths straddle every backend block boundary (AVX2 runs 4 words
// per op, NEON 2) so full blocks, partial tails, and empty spans are all
// hit, and the word patterns include the degenerate cases the block
// probes special-case: all-zero (testz skips), all-ones, and a single
// set bit at a random position.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/simd.h"

namespace cspdb {
namespace {

// 0..9 covers every remainder mod 4; 15..17 and 31..33 cross block
// boundaries after several full blocks.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5,  6,  7,
                                8, 9, 15, 16, 17, 31, 32, 33};

enum Pattern { kDense, kSparse, kZero, kOnes, kSingleBit, kNumPatterns };

std::vector<uint64_t> MakeWords(std::size_t n, Pattern pattern, Rng* rng) {
  std::vector<uint64_t> w(n, 0);
  switch (pattern) {
    case kDense:
      for (auto& word : w) {
        word = (static_cast<uint64_t>(rng->UniformInt(0, 0x7fffffff)) << 32) ^
               static_cast<uint64_t>(rng->UniformInt(0, 0x7fffffff));
      }
      break;
    case kSparse:
      for (auto& word : w) {
        word = rng->UniformInt(0, 7) == 0
                   ? uint64_t{1} << rng->UniformInt(0, 63)
                   : 0;
      }
      break;
    case kZero:
      break;
    case kOnes:
      for (auto& word : w) word = ~uint64_t{0};
      break;
    case kSingleBit:
      if (n > 0) {
        w[static_cast<std::size_t>(
            rng->UniformInt(0, static_cast<int>(n) - 1))] =
            uint64_t{1} << rng->UniformInt(0, 63);
      }
      break;
    default:
      break;
  }
  return w;
}

std::string Label(std::size_t n, int pa, int pb, int trial) {
  return "n=" + std::to_string(n) + " pat=(" + std::to_string(pa) + "," +
         std::to_string(pb) + ") trial=" + std::to_string(trial);
}

TEST(Simd, BackendNameIsKnown) {
  const std::string name = simd::BackendName();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
#if defined(CSPDB_ENABLE_SIMD) && defined(__AVX2__)
  EXPECT_EQ(name, "avx2");
#endif
}

TEST(Simd, InPlaceOpsMatchScalar) {
  Rng rng(2024);
  for (std::size_t n : kLengths) {
    for (int pa = 0; pa < kNumPatterns; ++pa) {
      for (int pb = 0; pb < kNumPatterns; ++pb) {
        for (int trial = 0; trial < 3; ++trial) {
          const std::string label =
              Label(n, pa, pb, trial);
          const std::vector<uint64_t> a =
              MakeWords(n, static_cast<Pattern>(pa), &rng);
          const std::vector<uint64_t> b =
              MakeWords(n, static_cast<Pattern>(pb), &rng);

          std::vector<uint64_t> got = a, want = a;
          simd::AndInPlace(got.data(), b.data(), n);
          simd::scalar::AndInPlace(want.data(), b.data(), n);
          EXPECT_EQ(got, want) << label << " and";

          got = a;
          want = a;
          simd::OrInPlace(got.data(), b.data(), n);
          simd::scalar::OrInPlace(want.data(), b.data(), n);
          EXPECT_EQ(got, want) << label << " or";

          got = a;
          want = a;
          simd::AndNotInPlace(got.data(), b.data(), n);
          simd::scalar::AndNotInPlace(want.data(), b.data(), n);
          EXPECT_EQ(got, want) << label << " andnot";
        }
      }
    }
  }
}

TEST(Simd, ProbesMatchScalar) {
  Rng rng(4048);
  for (std::size_t n : kLengths) {
    for (int pa = 0; pa < kNumPatterns; ++pa) {
      for (int pb = 0; pb < kNumPatterns; ++pb) {
        for (int trial = 0; trial < 4; ++trial) {
          const std::string label = Label(n, pa, pb, trial);
          const std::vector<uint64_t> a =
              MakeWords(n, static_cast<Pattern>(pa), &rng);
          const std::vector<uint64_t> b =
              MakeWords(n, static_cast<Pattern>(pb), &rng);
          EXPECT_EQ(simd::Intersects(a.data(), b.data(), n),
                    simd::scalar::Intersects(a.data(), b.data(), n))
              << label;
          EXPECT_EQ(simd::FirstCommonBit(a.data(), b.data(), n),
                    simd::scalar::FirstCommonBit(a.data(), b.data(), n))
              << label;
          EXPECT_EQ(simd::PopCount(a.data(), n),
                    simd::scalar::PopCount(a.data(), n))
              << label;
        }
      }
    }
  }
}

TEST(Simd, NextSetBitMatchesScalarFromEveryOffset) {
  Rng rng(8096);
  for (std::size_t n : kLengths) {
    for (int pa = 0; pa < kNumPatterns; ++pa) {
      const std::vector<uint64_t> w =
          MakeWords(n, static_cast<Pattern>(pa), &rng);
      const int64_t bits = static_cast<int64_t>(n) * 64;
      for (int64_t from = 0; from <= bits; ++from) {
        ASSERT_EQ(simd::NextSetBit(w.data(), n, from),
                  simd::scalar::NextSetBit(w.data(), n, from))
            << "n=" << n << " pat=" << pa << " from=" << from;
      }
    }
  }
}

TEST(Simd, NextSetBitSkipsLongZeroRuns) {
  // A span long enough that the block-skip loop runs for thousands of
  // iterations, with the only set bits at the very ends: the scan must
  // land exactly, not just near.
  const std::size_t n = std::size_t{1} << 17;  // 1MB, 2^23 bits
  std::vector<uint64_t> w(n, 0);
  const int64_t last = static_cast<int64_t>(n) * 64 - 1;
  w[0] = 1;                       // bit 0
  w[n - 1] = uint64_t{1} << 63;   // the last bit
  EXPECT_EQ(simd::NextSetBit(w.data(), n, 0), 0);
  EXPECT_EQ(simd::NextSetBit(w.data(), n, 1), last);
  EXPECT_EQ(simd::NextSetBit(w.data(), n, last), last);
  EXPECT_EQ(simd::NextSetBit(w.data(), n, last + 1), -1);
  EXPECT_EQ(simd::PopCount(w.data(), n), 2);
  EXPECT_EQ(simd::FirstCommonBit(w.data(), w.data(), n), 0);
}

TEST(Simd, UnalignedSpansMatchScalar) {
  // The primitives promise unaligned loads: probe from every word offset
  // within a 32-byte-misaligned window so no call can assume vector
  // alignment.
  Rng rng(16192);
  std::vector<uint64_t> backing_a = MakeWords(40, kDense, &rng);
  std::vector<uint64_t> backing_b = MakeWords(40, kDense, &rng);
  for (std::size_t off = 0; off < 4; ++off) {
    const uint64_t* a = backing_a.data() + off;
    const uint64_t* b = backing_b.data() + off;
    const std::size_t n = 33;
    const std::string label = "off=" + std::to_string(off);
    EXPECT_EQ(simd::Intersects(a, b, n), simd::scalar::Intersects(a, b, n))
        << label;
    EXPECT_EQ(simd::FirstCommonBit(a, b, n),
              simd::scalar::FirstCommonBit(a, b, n))
        << label;
    EXPECT_EQ(simd::PopCount(a, n), simd::scalar::PopCount(a, n)) << label;
    std::vector<uint64_t> got(a, a + n), want(a, a + n);
    simd::AndInPlace(got.data(), b, n);
    simd::scalar::AndInPlace(want.data(), b, n);
    EXPECT_EQ(got, want) << label;
  }
}

}  // namespace
}  // namespace cspdb
