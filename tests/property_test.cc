// Parameterized property sweeps: invariants that must hold across
// instance families and parameter grids.

#include <gtest/gtest.h>

#include <tuple>

#include "boolean/hell_nesetril.h"
#include "consistency/local_consistency.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "db/algebra.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "relational/structure_ops.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// --- Homomorphism composition: hom(A,B) and hom(B,C) compose. ---

class CompositionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CompositionProperty, HomomorphismsCompose) {
  auto [seed, size] = GetParam();
  Rng rng(seed);
  Structure a = RandomDigraph(size, 0.35, &rng);
  Structure b = RandomDigraph(3, 0.55, &rng, /*allow_loops=*/true);
  Structure c = RandomDigraph(3, 0.55, &rng, /*allow_loops=*/true);
  auto h1 = FindHomomorphism(a, b);
  auto h2 = FindHomomorphism(b, c);
  if (h1.has_value() && h2.has_value()) {
    std::vector<int> composed(a.domain_size());
    for (int x = 0; x < a.domain_size(); ++x) {
      composed[x] = (*h2)[(*h1)[x]];
    }
    EXPECT_TRUE(IsHomomorphism(a, c, composed));
    EXPECT_TRUE(FindHomomorphism(a, c).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CompositionProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4,
                                                              5),
                                            ::testing::Values(3, 4, 5)));

// --- Product is the categorical product for homomorphism existence. ---

class ProductProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProductProperty, HomIntoProductIffIntoBoth) {
  Rng rng(GetParam());
  Structure c = RandomDigraph(3, 0.4, &rng);
  Structure a = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
  Structure prod = DirectProduct(a, b);
  EXPECT_EQ(FindHomomorphism(c, prod).has_value(),
            FindHomomorphism(c, a).has_value() &&
                FindHomomorphism(c, b).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProductProperty,
                         ::testing::Range(100, 112));

// --- Game soundness sweep: hom implies Duplicator win, all k. ---

class GameSoundness
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GameSoundness, HomomorphismImpliesDuplicatorWin) {
  auto [seed, k] = GetParam();
  Rng rng(seed);
  Structure a = RandomDigraph(4, 0.4, &rng);
  Structure b = RandomDigraph(3, 0.55, &rng, /*allow_loops=*/true);
  if (FindHomomorphism(a, b).has_value()) {
    EXPECT_TRUE(PebbleGame(a, b, k).DuplicatorWins());
  } else {
    // Contrapositive of soundness is not required, but a Spoiler win
    // certifies unsolvability: check the implication's other direction.
    if (!PebbleGame(a, b, k).DuplicatorWins()) {
      EXPECT_FALSE(FindHomomorphism(a, b).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GameSoundness,
                         ::testing::Combine(::testing::Range(200, 210),
                                            ::testing::Values(1, 2, 3)));

// --- Consistency is monotone in i, and game/direct forms agree. ---

class ConsistencyMonotone : public ::testing::TestWithParam<int> {};

TEST_P(ConsistencyMonotone, StrongKConsistencyIsAntitoneInK) {
  Rng rng(GetParam());
  CspInstance csp = RandomBinaryCsp(4, 2, 4, 0.35, &rng);
  bool prev = true;
  for (int k = 1; k <= 3; ++k) {
    bool now = IsStronglyKConsistent(csp, k);
    EXPECT_TRUE(prev || !now) << "k=" << k;  // once false, stays false
    prev = now;
    EXPECT_EQ(now, IsStronglyKConsistentViaGames(csp, k)) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConsistencyMonotone,
                         ::testing::Range(300, 310));

// --- Solver modes agree on solvability across a density sweep. ---

class SolverAgreement
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SolverAgreement, AllModesAgree) {
  auto [seed, tightness] = GetParam();
  Rng rng(seed);
  CspInstance csp = RandomBinaryCsp(6, 3, 9, tightness, &rng);
  SolverOptions none;
  none.propagation = Propagation::kNone;
  SolverOptions fc;
  fc.propagation = Propagation::kForwardChecking;
  SolverOptions gac;
  gac.propagation = Propagation::kGac;
  bool s0 = BacktrackingSolver(csp, none).Solve().has_value();
  bool s1 = BacktrackingSolver(csp, fc).Solve().has_value();
  bool s2 = BacktrackingSolver(csp, gac).Solve().has_value();
  EXPECT_EQ(s0, s1);
  EXPECT_EQ(s0, s2);
  EXPECT_EQ(s0, SolvableByJoin(csp));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SolverAgreement,
    ::testing::Combine(::testing::Range(400, 406),
                       ::testing::Values(0.2, 0.45, 0.7)));

// --- Treewidth invariants across the partial k-tree family. ---

class TreewidthProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreewidthProperty, PartialKTreesHaveBoundedWidth) {
  auto [seed, k] = GetParam();
  Rng rng(seed);
  Graph g = RandomPartialKTree(9, k, 0.85, &rng);
  int tw = ExactTreewidth(g);
  EXPECT_LE(tw, k);
  // Heuristics are upper bounds and decompositions are valid.
  TreeDecomposition td = MinFillDecomposition(g);
  EXPECT_TRUE(IsValidDecomposition(g, td));
  EXPECT_GE(td.Width(), tw);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreewidthProperty,
                         ::testing::Combine(::testing::Range(500, 506),
                                            ::testing::Values(1, 2, 3)));

// --- Join evaluation equals search across arity and tightness. ---

class JoinProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(JoinProperty, JoinDecidesSolvability) {
  auto [seed, constraints] = GetParam();
  Rng rng(seed);
  CspInstance csp = RandomBinaryCsp(5, 3, constraints, 0.5, &rng);
  EXPECT_EQ(SolvableByJoin(csp),
            BacktrackingSolver(csp).Solve().has_value());
}

INSTANTIATE_TEST_SUITE_P(Sweep, JoinProperty,
                         ::testing::Combine(::testing::Range(600, 606),
                                            ::testing::Values(3, 6, 9)));

}  // namespace
}  // namespace cspdb
