// Tests for the solver and consistency extensions: conflict-directed
// backjumping, path consistency (PC-2), and the sound k-consistency
// approximation of certain answers (the paper's closing [10] remark).

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "consistency/path_consistency.h"
#include "csp/backjump_solver.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "views/certain_answers.h"
#include "views/constraint_template.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(BackjumpSolver, AgreesWithBacktrackingOnRandomInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    CspInstance csp = RandomBinaryCsp(6, 3, 9, 0.5, &rng);
    BackjumpSolver cbj(csp);
    BacktrackingSolver bt(csp);
    auto cbj_solution = cbj.Solve();
    EXPECT_EQ(cbj_solution.has_value(), bt.Solve().has_value()) << trial;
    if (cbj_solution.has_value()) {
      EXPECT_TRUE(csp.IsSolution(*cbj_solution));
    }
  }
}

TEST(BackjumpSolver, SolvesColoringAndDetectsUnsat) {
  CspInstance yes = ToCspInstance(CycleGraph(6), CliqueGraph(2));
  EXPECT_TRUE(BackjumpSolver(yes).Solve().has_value());
  CspInstance no = ToCspInstance(CycleGraph(7), CliqueGraph(2));
  EXPECT_FALSE(BackjumpSolver(no).Solve().has_value());
}

TEST(BackjumpSolver, JumpsOverIrrelevantVariables) {
  // Static order (by degree) is x3, x1, x2, x0. The conflict at x2 is
  // with x3 only, so CBJ jumps over the loose x1 straight back to x3.
  CspInstance csp(4, 3);
  std::vector<Tuple> all;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) all.push_back({a, b});
  }
  csp.AddConstraint({1, 2}, {{0, 1}});  // x1 = 0, x2 = 1
  csp.AddConstraint({1, 3}, all);
  csp.AddConstraint({0, 1}, all);
  csp.AddConstraint({2}, {{0}});  // ...but x2 must be 0
  csp.AddConstraint({3, 0}, all);
  BackjumpSolver cbj(csp);
  EXPECT_FALSE(cbj.Solve().has_value());
  EXPECT_GE(cbj.stats().backtracks, 1);
  EXPECT_GE(cbj.stats().backjumps, 1);
}

TEST(BackjumpSolver, EdgeCases) {
  CspInstance empty(0, 3);
  EXPECT_TRUE(BackjumpSolver(empty).Solve().has_value());
  CspInstance no_values(2, 0);
  EXPECT_FALSE(BackjumpSolver(no_values).Solve().has_value());
  CspInstance empty_relation(2, 2);
  empty_relation.AddConstraint({0, 1}, {});
  EXPECT_FALSE(BackjumpSolver(empty_relation).Solve().has_value());
}

TEST(PathConsistency, TightensCompositions) {
  // x0 < x1 and x1 < x2 over {0,1,2}: PC should rule out (x0,x2) pairs
  // with x2 <= x0 + 1.
  CspInstance csp(3, 3);
  std::vector<Tuple> less;
  for (int a = 0; a < 3; ++a) {
    for (int b = a + 1; b < 3; ++b) less.push_back({a, b});
  }
  csp.AddConstraint({0, 1}, less);
  csp.AddConstraint({1, 2}, less);
  PcResult pc = EnforcePathConsistency(csp);
  ASSERT_TRUE(pc.consistent);
  int n = 3, d = 3;
  // Only (0, 2) survives between x0 and x2.
  EXPECT_TRUE(pc.pairs[0 * n + 2][0 * d + 2]);
  EXPECT_FALSE(pc.pairs[0 * n + 2][0 * d + 1]);
  EXPECT_FALSE(pc.pairs[0 * n + 2][1 * d + 2]);
  // Diagonal (domain) of x1 narrows to {1}.
  EXPECT_TRUE(pc.pairs[1 * n + 1][1 * d + 1]);
  EXPECT_FALSE(pc.pairs[1 * n + 1][0 * d + 0]);
  EXPECT_FALSE(pc.pairs[1 * n + 1][2 * d + 2]);
}

TEST(PathConsistency, DetectsOddCycleWithTwoColors) {
  CspInstance csp = ToCspInstance(CycleGraph(5), CliqueGraph(2));
  PcResult pc = EnforcePathConsistency(csp);
  EXPECT_FALSE(pc.consistent);
  CspInstance even = ToCspInstance(CycleGraph(6), CliqueGraph(2));
  EXPECT_TRUE(EnforcePathConsistency(even).consistent);
}

TEST(PathConsistency, SoundNeverPrunesSolutions) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    CspInstance csp = RandomBinaryCsp(5, 3, 6, 0.4, &rng);
    PcResult pc = EnforcePathConsistency(csp);
    BacktrackingSolver solver(csp);
    auto solution = solver.Solve();
    if (!solution.has_value()) continue;
    ASSERT_TRUE(pc.consistent) << trial;
    int n = csp.num_variables(), d = csp.num_values();
    for (int i = 0; i < n; ++i) {
      for (int j = i; j < n; ++j) {
        EXPECT_TRUE(
            pc.pairs[i * n + j][(*solution)[i] * d + (*solution)[j]])
            << trial << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(PathConsistency, MatchesGameOnTreewidthTwoInstances) {
  // On binary instances over templates where strong 3-consistency
  // decides, PC failure must match Spoiler winning the 3-pebble game.
  Rng rng(11);
  Structure k2 = CliqueGraph(2);
  for (int trial = 0; trial < 8; ++trial) {
    Structure g = RandomUndirectedGraph(6, 0.35, &rng);
    CspInstance csp = ToCspInstance(g, k2);
    PcResult pc = EnforcePathConsistency(csp);
    bool colorable = FindHomomorphism(g, k2).has_value();
    if (!pc.consistent) {
      EXPECT_FALSE(colorable) << trial;  // PC failure is a refutation
    }
    if (colorable) {
      EXPECT_TRUE(pc.consistent) << trial;
    }
  }
}

TEST(ViewsApprox, KConsistencyCertificateIsSound) {
  // Whenever the game-based approximation says "certain", the exact
  // decision must agree.
  Rng rng(13);
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a|b", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("ab", setting.alphabet)});
  setting.query = ParseRegex("ab|b", setting.alphabet);
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  for (int trial = 0; trial < 6; ++trial) {
    ViewInstance instance;
    instance.num_objects = 3;
    instance.ext.resize(2);
    for (int i = 0; i < 2; ++i) {
      int edges = rng.UniformInt(0, 2);
      for (int e = 0; e < edges; ++e) {
        instance.ext[i].push_back({rng.UniformInt(0, 2),
                                   rng.UniformInt(0, 2)});
      }
    }
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        bool approx =
            CertainByKConsistency(tmpl, setting, instance, c, d, 2);
        bool exact = CertainAnswerViaCsp(tmpl, setting, instance, c, d);
        if (approx) {
          EXPECT_TRUE(exact) << trial << " c=" << c << " d=" << d;
        }
      }
    }
  }
}

TEST(ViewsApprox, CertificateFindsEasyCertainAnswers) {
  // Chain of single-symbol views: the forced path makes (0,2) certain,
  // and already 2-consistency proves it.
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V0", ParseRegex("a", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("b", setting.alphabet)});
  setting.query = ParseRegex("ab", setting.alphabet);
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  ViewInstance instance;
  instance.num_objects = 3;
  instance.ext = {{{0, 1}}, {{1, 2}}};
  EXPECT_TRUE(CertainByKConsistency(tmpl, setting, instance, 0, 2, 2));
  EXPECT_FALSE(CertainByKConsistency(tmpl, setting, instance, 0, 1, 2));
}

}  // namespace
}  // namespace cspdb
