// Tests for the observability layer: metrics registry round-trips, the
// Chrome tracer's span balance and JSON shape, macro gating, and the
// EXPLAIN renderers. The build-tier contract (CSPDB_OBS=OFF compiles the
// macros to no-ops) is tested via CSPDB_OBS_ENABLED, so the same file is
// correct under every tier.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "consistency/arc_consistency.h"
#include "csp/backjump_solver.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "db/acyclic.h"
#include "db/relation.h"
#include "gtest/gtest.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "treewidth/bucket_elimination.h"

namespace cspdb {
namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << path;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// Pigeonhole instance: `vars` pairwise-distinct variables over `values`
// values; unsolvable (and search-heavy) when vars > values.
CspInstance Pigeonhole(int vars, int values) {
  CspInstance csp(vars, values);
  std::vector<Tuple> different;
  for (int x = 0; x < values; ++x) {
    for (int y = 0; y < values; ++y) {
      if (x != y) different.push_back({x, y});
    }
  }
  for (int a = 0; a < vars; ++a) {
    for (int b = a + 1; b < vars; ++b) {
      csp.AddConstraint({a, b}, different);
    }
  }
  return csp;
}

TEST(MetricsRegistry, HandlesAreStableAndSnapshotRoundTrips) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();

  obs::Counter& c = registry.GetCounter("obs_test.counter");
  EXPECT_EQ(&c, &registry.GetCounter("obs_test.counter"));
  c.Add(3);
  c.Add(4);
  registry.GetGauge("obs_test.gauge").UpdateMax(7);
  registry.GetGauge("obs_test.gauge").UpdateMax(5);  // below the watermark
  registry.GetTimer("obs_test.timer").Record(1000);
  registry.GetTimer("obs_test.timer").Record(500);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("obs_test.counter"), 7);
  EXPECT_EQ(snapshot.gauges.at("obs_test.gauge"), 7);
  EXPECT_EQ(snapshot.timers.at("obs_test.timer").count, 2);
  EXPECT_EQ(snapshot.timers.at("obs_test.timer").total_ns, 1500);
  EXPECT_TRUE(registry.HasCounter("obs_test.counter"));
  EXPECT_FALSE(registry.HasCounter("obs_test.not_registered"));

  // Values survive into the JSON rendering.
  std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"obs_test.counter\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"obs_test.gauge\": 7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos) << json;

  // Reset zeroes the values but keeps the handle valid.
  registry.ResetAll();
  EXPECT_EQ(c.value(), 0);
  c.Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("obs_test.counter"), 1);
}

// Extracts (phase, name) for every event line of a written trace file, in
// file order.
std::vector<std::pair<char, std::string>> EventsOf(const std::string& text) {
  std::vector<std::pair<char, std::string>> events;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    auto ph = line.find("\"ph\": \"");
    auto name = line.find("\"name\": \"");
    if (ph == std::string::npos || name == std::string::npos) continue;
    name += 9;
    events.push_back(
        {line[ph + 7], line.substr(name, line.find('"', name) - name)});
  }
  return events;
}

TEST(TraceSession, SpansNestAndBalance) {
  const std::string path = testing::TempDir() + "/obs_test_trace.json";
  obs::TraceSession& session = obs::TraceSession::Global();
  session.Start(path);
  {
    obs::ScopedSpan outer("outer");
    {
      obs::ScopedSpan inner("inner");
      session.Instant("tick");
    }
    session.CounterValue("queue", 42);
  }
  session.Stop();
  ASSERT_FALSE(session.enabled());

  std::string text = ReadWholeFile(path);
  std::vector<std::pair<char, std::string>> events = EventsOf(text);
  ASSERT_EQ(events.size(), 6u);

  // LIFO discipline: every E closes the innermost open B of the same name.
  std::vector<std::string> stack;
  for (const auto& [phase, name] : events) {
    if (phase == 'B') stack.push_back(name);
    if (phase == 'E') {
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    }
  }
  EXPECT_TRUE(stack.empty());

  // The inner span begins after the outer one and ends before it.
  auto phase_of = [&](const std::string& name, int occurrence) {
    int seen = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].second == name && seen++ == occurrence) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  EXPECT_LT(phase_of("outer", 0), phase_of("inner", 0));
  EXPECT_LT(phase_of("inner", 1), phase_of("outer", 1));
}

TEST(TraceSession, EmitsValidChromeTraceJson) {
  const std::string path = testing::TempDir() + "/obs_test_shape.json";
  obs::TraceSession& session = obs::TraceSession::Global();
  session.Start(path);
  {
    obs::ScopedSpan span("solo");
    session.Instant("blip");
  }
  session.CounterValue("rows", 7);
  session.Stop();

  std::string text = ReadWholeFile(path);
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [", 0),
            0u);
  EXPECT_NE(text.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"E\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(text.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(text.find("\"value\": 7"), std::string::npos);

  // Structural sanity: braces and brackets balance, quotes pair up.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '"') % 2, 0);

  // A file is written (and stays valid) even with zero events recorded.
  session.Start(path);
  session.Stop();
  std::string empty_text = ReadWholeFile(path);
  EXPECT_NE(empty_text.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_TRUE(EventsOf(empty_text).empty());
}

TEST(ObsMacros, GatedByBuildTier) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.ResetAll();

  int evaluated = 0;
  CSPDB_COUNT_N("obs_test.macro_counter", (++evaluated, 2));
  CSPDB_GAUGE_MAX("obs_test.macro_gauge", (++evaluated, 9));
  {
    CSPDB_TIMER_SCOPE("obs_test.macro_timer");
  }

#if CSPDB_OBS_ENABLED
  // Instrumented tier: operands evaluate and the registry records.
  EXPECT_EQ(evaluated, 2);
  EXPECT_EQ(registry.Snapshot().counters.at("obs_test.macro_counter"), 2);
  EXPECT_EQ(registry.Snapshot().gauges.at("obs_test.macro_gauge"), 9);
  EXPECT_EQ(registry.Snapshot().timers.at("obs_test.macro_timer").count, 1);
#else
  // Release tier: the macros compile away — operands must NOT evaluate
  // and nothing registers.
  EXPECT_EQ(evaluated, 0);
  EXPECT_FALSE(registry.HasCounter("obs_test.macro_counter"));
#endif
}

TEST(BackjumpSolver, NodeLimitAborts) {
  CspInstance csp = Pigeonhole(/*vars=*/7, /*values=*/6);

  BackjumpOptions limited;
  limited.node_limit = 5;
  BackjumpSolver solver(csp, limited);
  EXPECT_FALSE(solver.Solve().has_value());
  EXPECT_TRUE(solver.stats().aborted);
  EXPECT_LE(solver.stats().nodes, 5);

  // Unlimited run refutes the instance without aborting, and needs more
  // nodes than the limit that tripped above.
  BackjumpSolver full(csp);
  EXPECT_FALSE(full.Solve().has_value());
  EXPECT_FALSE(full.stats().aborted);
  EXPECT_GT(full.stats().nodes, 5);
}

TEST(BackjumpSolver, NodeLimitLargeEnoughDoesNotAbort) {
  CspInstance csp = Pigeonhole(/*vars=*/4, /*values=*/4);
  BackjumpOptions options;
  options.node_limit = 1 << 20;
  BackjumpSolver solver(csp, options);
  EXPECT_TRUE(solver.Solve().has_value());
  EXPECT_FALSE(solver.stats().aborted);
}

TEST(Explain, SolverRendersConfigurationAndCounters) {
  CspInstance csp = Pigeonhole(/*vars=*/4, /*values=*/3);
  SolverOptions options;
  options.node_limit = 100;
  BacktrackingSolver solver(csp, options);
  EXPECT_FALSE(solver.Solve().has_value());

  std::string text = obs::ExplainSolver(csp, options, solver.stats(),
                                        &solver.revision_counts());
  EXPECT_NE(text.find("MAC (maintain GAC)"), std::string::npos) << text;
  EXPECT_NE(text.find("node limit: 100"), std::string::npos) << text;
  EXPECT_NE(text.find("nodes="), std::string::npos) << text;
  EXPECT_NE(text.find("per-constraint revisions"), std::string::npos) << text;
  EXPECT_NE(text.find("scope("), std::string::npos) << text;
}

TEST(Explain, JoinForestRendersTreeWithStats) {
  DbRelation r0({0, 1}), r1({1, 2});
  for (int i = 0; i < 4; ++i) r0.AddRow({i, i});
  r1.AddRow({0, 0});
  std::vector<DbRelation> relations = {r0, r1};
  auto forest = BuildJoinForest(HypergraphOfSchemas(relations));
  ASSERT_TRUE(forest.has_value());

  YannakakisStats stats;
  DbRelation answer = YannakakisEvaluate(*forest, relations, {0, 2},
                                         /*peak_rows=*/nullptr, &stats);
  EXPECT_EQ(answer.size(), 1u);
  EXPECT_EQ(stats.output_rows, 1);

  std::string text = obs::ExplainJoinForest(*forest, relations, &stats);
  EXPECT_NE(text.find("join forest: 2 relations, 1 root"), std::string::npos)
      << text;
  EXPECT_NE(text.find("input=4"), std::string::npos) << text;
  EXPECT_NE(text.find("reduced="), std::string::npos) << text;
  EXPECT_NE(text.find("semijoin pass"), std::string::npos) << text;
  EXPECT_NE(text.find("output 1 rows"), std::string::npos) << text;
}

TEST(Explain, BucketEliminationRendersBucketsAndBound) {
  CspInstance csp = Pigeonhole(/*vars=*/3, /*values=*/3);
  std::vector<int> order = {0, 1, 2};
  BucketStats stats;
  auto solution = SolveByBucketElimination(csp, order, &stats);
  ASSERT_TRUE(solution.has_value());
  ASSERT_EQ(stats.bucket_rows.size(), 3u);

  std::string text = obs::ExplainBucketElimination(csp, order, stats);
  EXPECT_NE(text.find("3 variables"), std::string::npos) << text;
  EXPECT_NE(text.find("induced width w="), std::string::npos) << text;
  EXPECT_NE(text.find("d^(w+1)="), std::string::npos) << text;
  EXPECT_NE(text.find("eliminate"), std::string::npos) << text;
  EXPECT_NE(text.find("total intermediate rows:"), std::string::npos) << text;
}

TEST(StatsPlumbing, GacAndYannakakisReportObservedWork) {
  // GAC on an instance with a forced wipeout: x != x is unsatisfiable.
  CspInstance wipe(1, 2);
  wipe.AddConstraint({0}, {});
  AcResult gac = EnforceGac(wipe);
  EXPECT_FALSE(gac.consistent);
  EXPECT_EQ(gac.wipeouts, 1);

  // A consistent pass reports revisions but no wipeout.
  CspInstance ok = Pigeonhole(/*vars=*/3, /*values=*/3);
  AcResult fine = EnforceGac(ok);
  EXPECT_TRUE(fine.consistent);
  EXPECT_EQ(fine.wipeouts, 0);
  EXPECT_GT(fine.revisions, 0);

  // FullReducer fills the per-relation row vectors.
  DbRelation r0({0, 1}), r1({1, 2});
  for (int i = 0; i < 3; ++i) r0.AddRow({i, i});
  r1.AddRow({0, 5});
  std::vector<DbRelation> relations = {r0, r1};
  auto forest = BuildJoinForest(HypergraphOfSchemas(relations));
  ASSERT_TRUE(forest.has_value());
  YannakakisStats stats;
  FullReducer(*forest, &relations, &stats);
  ASSERT_EQ(stats.input_rows.size(), 2u);
  EXPECT_EQ(stats.input_rows[0], 3);
  EXPECT_EQ(stats.input_rows[1], 1);
  EXPECT_EQ(stats.reduced_rows[0], 1);  // only the row joining with r1
  EXPECT_EQ(stats.rows_removed, 2);
  EXPECT_GT(stats.semijoin_passes, 0);
}

}  // namespace
}  // namespace cspdb
