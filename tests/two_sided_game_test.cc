// Tests for the two-sided (back-and-forth) k-pebble game: k-variable
// equivalence of structures.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "games/pebble_game.h"
#include "games/two_sided_game.h"
#include "gen/generators.h"
#include "relational/structure_ops.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(TwoSidedGame, IsomorphicStructuresAreEquivalent) {
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomDigraph(5, 0.4, &rng);
    int n = g.domain_size();
    Structure rotated(g.vocabulary(), n);
    for (const Tuple& t : g.tuples(0)) {
      rotated.AddTuple(0, {(t[0] + 2) % n, (t[1] + 2) % n});
    }
    for (int k = 1; k <= 3; ++k) {
      EXPECT_TRUE(KVariableEquivalent(g, rotated, k))
          << trial << " k=" << k;
    }
  }
}

TEST(TwoSidedGame, EdgeVersusNoEdge) {
  Structure edge = PathGraph(2);
  Structure empty(GraphVocabulary(), 2);
  EXPECT_FALSE(KVariableEquivalent(edge, empty, 2));
  // One pebble cannot see binary relations at all (no tuple ever fully
  // pebbled), so k = 1 does not separate them.
  EXPECT_TRUE(KVariableEquivalent(edge, empty, 1));
}

TEST(TwoSidedGame, DifferentDomainEmptiness) {
  Structure empty(GraphVocabulary(), 0);
  Structure point(GraphVocabulary(), 1);
  EXPECT_FALSE(KVariableEquivalent(empty, point, 1));
  EXPECT_TRUE(KVariableEquivalent(empty, Structure(GraphVocabulary(), 0),
                                  2));
}

TEST(TwoSidedGame, CyclesSeparatedWithThreeVariables) {
  Structure c5 = CycleGraph(5);
  Structure c6 = CycleGraph(6);
  // Two variables cannot tell the cycles apart...
  EXPECT_TRUE(KVariableEquivalent(c5, c6, 2));
  // ...but three can (an odd closed walk is 3-variable expressible).
  EXPECT_FALSE(KVariableEquivalent(c5, c6, 3));
}

TEST(TwoSidedGame, TriangleDetectedWithThreeVariables) {
  Structure k3 = CliqueGraph(3);
  Structure c4 = CycleGraph(4);
  EXPECT_FALSE(KVariableEquivalent(k3, c4, 3));
}

TEST(TwoSidedGame, EquivalenceImpliesBothExistentialWins) {
  Rng rng(7);
  int exercised = 0;
  for (int trial = 0; trial < 15; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(4, 0.4, &rng);
    for (int k = 1; k <= 2; ++k) {
      if (!TwoSidedPebbleGame(a, b, k).DuplicatorWins()) continue;
      ++exercised;
      EXPECT_TRUE(PebbleGame(a, b, k).DuplicatorWins())
          << trial << " k=" << k;
      EXPECT_TRUE(PebbleGame(b, a, k).DuplicatorWins())
          << trial << " k=" << k;
    }
  }
  EXPECT_GT(exercised, 0);
}

TEST(TwoSidedGame, MonotoneInK) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(4, 0.4, &rng);
    bool prev = KVariableEquivalent(a, b, 1);
    for (int k = 2; k <= 3; ++k) {
      bool now = KVariableEquivalent(a, b, k);
      // Equivalence at k implies equivalence at k-1.
      EXPECT_TRUE(prev || !now) << trial << " k=" << k;
      prev = now;
    }
  }
}

TEST(TwoSidedGame, LargestFamilyMembership) {
  Structure c5 = CycleGraph(5);
  TwoSidedPebbleGame game(c5, c5, 2);
  ASSERT_TRUE(game.DuplicatorWins());
  // The identity on one element belongs to the winning family; mapping
  // adjacent to itself-with-offset-2 (non-adjacent) does not extend an
  // edge pair... the pair {0->0, 1->3} maps an edge to a non-edge: not
  // even a partial isomorphism.
  EXPECT_TRUE(game.InLargestFamily({{0, 0}}));
  EXPECT_FALSE(game.InLargestFamily({{0, 0}, {1, 3}}));
}

}  // namespace
}  // namespace cspdb
