// Differential tests pinning the parallel kernels to their serial twins
// (the execution layer's determinism contract, DESIGN.md):
//
//   * EnforceGacParallel vs EnforceGac: identical consistency verdicts,
//     and on consistent instances bit-identical fixpoint domains and
//     equal pruning counts (the GAC fixpoint is unique; each dead value
//     is CAS-cleared exactly once).
//   * NaturalJoinParallel / SemijoinParallel vs the serial kernels:
//     bit-identical output including row order (stripe-ordered
//     concatenation reproduces the serial probe order).
//   * FullReducerParallel vs FullReducer: identical reduced relations and
//     stats totals (semijoins into one parent commute exactly).
//   * SolvePortfolio: the winning answer always agrees with a serial
//     complete solver on satisfiability, and solutions verify.
//
// Thresholds are forced to zero so the parallel paths run even on the
// small corpus instances; the pool is a local 4-worker pool so the tests
// exercise real concurrency regardless of the machine's core count.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "consistency/arc_consistency.h"
#include "consistency/parallel_gac.h"
#include "csp/backjump_solver.h"
#include "csp/convert.h"
#include "csp/instance.h"
#include "csp/portfolio_solver.h"
#include "csp/solver.h"
#include "db/acyclic.h"
#include "db/algebra.h"
#include "db/parallel_algebra.h"
#include "db/relation.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

exec::ThreadPool& TestPool() {
  static exec::ThreadPool* pool = new exec::ThreadPool(4);
  return *pool;
}

ParallelGacOptions ForcedGacOptions() {
  ParallelGacOptions options;
  options.pool = &TestPool();
  options.min_constraints = 0;
  return options;
}

ParallelDbOptions ForcedDbOptions() {
  ParallelDbOptions options;
  options.pool = &TestPool();
  options.min_probe_rows = 0;
  options.min_forest_nodes = 0;
  return options;
}

// The CSP corpus recipes shared with analysis_fuzz_test.cc /
// kernel_differential_test.cc.
CspInstance BinaryCorpusInstance(uint64_t seed) {
  Rng rng(1000 + seed);
  int n = 6 + static_cast<int>(seed % 5);
  int d = 2 + static_cast<int>(seed % 3);
  int max_constraints = n * (n - 1) / 2;
  int m = std::min(max_constraints, n + static_cast<int>(seed % n));
  double tightness = 0.15 + 0.04 * static_cast<double>(seed % 10);
  return RandomBinaryCsp(n, d, m, tightness, &rng);
}

CspInstance TreewidthCorpusInstance(uint64_t seed) {
  Rng rng(7000 + seed);
  int n = 8 + static_cast<int>(seed % 6);
  int k = 2 + static_cast<int>(seed % 2);
  int d = 2 + static_cast<int>(seed % 3);
  double tightness = 0.1 + 0.05 * static_cast<double>(seed % 8);
  return RandomTreewidthCsp(n, k, d, tightness, 0.85, &rng);
}

CspInstance HomCorpusInstance(uint64_t seed) {
  Rng rng(31000 + seed);
  Structure a = RandomDigraph(5 + static_cast<int>(seed % 3), 0.35, &rng);
  Structure b = RandomDigraph(3, 0.6, &rng, /*allow_loops=*/true);
  return ToCspInstance(a, b);
}

void ExpectParallelGacAgrees(const CspInstance& csp,
                             const std::string& label) {
  AcResult serial = EnforceGac(csp);
  AcResult parallel = EnforceGacParallel(csp, ForcedGacOptions());
  EXPECT_TRUE(parallel.complete) << label;
  ASSERT_EQ(parallel.consistent, serial.consistent) << label;
  if (!serial.consistent) return;  // partial wipeout domains are racy
  ASSERT_EQ(parallel.domains.size(), serial.domains.size()) << label;
  for (std::size_t v = 0; v < serial.domains.size(); ++v) {
    EXPECT_EQ(parallel.domains[v], serial.domains[v])
        << label << " variable " << v;
  }
  EXPECT_EQ(parallel.prunings, serial.prunings) << label;
}

TEST(ParallelDifferential, GacMatchesSerialOnBinaryCorpus) {
  for (uint64_t seed = 0; seed < 120; ++seed) {
    ExpectParallelGacAgrees(BinaryCorpusInstance(seed),
                            "binary seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferential, GacMatchesSerialOnTreewidthCorpus) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    ExpectParallelGacAgrees(TreewidthCorpusInstance(seed),
                            "treewidth seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferential, GacMatchesSerialOnHomCorpus) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    ExpectParallelGacAgrees(HomCorpusInstance(seed),
                            "hom seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferential, GacMatchesSerialOnDuplicateScopes) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(91000 + seed);
    int n = 4 + static_cast<int>(seed % 3);
    int d = 2 + static_cast<int>(seed % 3);
    CspInstance csp(n, d);
    int m = 4 + static_cast<int>(seed % 5);
    for (int c = 0; c < m; ++c) {
      int arity = rng.UniformInt(2, 3);
      std::vector<int> scope;
      for (int q = 0; q < arity; ++q) {
        scope.push_back(rng.UniformInt(0, n - 1));
      }
      std::vector<Tuple> allowed;
      int num_tuples = rng.UniformInt(1, 2 * d);
      for (int t = 0; t < num_tuples; ++t) {
        Tuple tuple;
        for (int q = 0; q < arity; ++q) {
          tuple.push_back(rng.UniformInt(0, d - 1));
        }
        allowed.push_back(std::move(tuple));
      }
      csp.AddConstraint(std::move(scope), std::move(allowed));
    }
    ExpectParallelGacAgrees(csp, "dup seed " + std::to_string(seed));
  }
}

TEST(ParallelDifferential, CancelledGacReportsIncompleteButSound) {
  exec::CancellationToken token;
  token.RequestCancel();
  ParallelGacOptions options = ForcedGacOptions();
  options.cancel = &token;
  CspInstance csp = BinaryCorpusInstance(1);
  AcResult result = EnforceGacParallel(csp, options);
  EXPECT_FALSE(result.complete);
  // Pre-cancelled: nothing pruned, domains are the sound full superset.
  for (const Bitset& domain : result.domains) {
    EXPECT_EQ(domain.Count(), csp.num_values());
  }
}

// ---------------------------------------------------------------------------
// Relational kernels.

DbRelation RandomRelation(std::vector<int> schema, int num_values,
                          int num_rows, Rng* rng) {
  DbRelation out(std::move(schema));
  Tuple row(out.arity());
  for (int i = 0; i < num_rows; ++i) {
    for (std::size_t q = 0; q < row.size(); ++q) {
      row[q] = rng->UniformInt(0, num_values - 1);
    }
    out.AddRow(row);
  }
  return out;
}

std::vector<int> RandomSchema(int max_attr, int arity, Rng* rng) {
  std::vector<int> pool;
  for (int a = 0; a <= max_attr; ++a) pool.push_back(a);
  std::vector<int> schema;
  for (int i = 0; i < arity && !pool.empty(); ++i) {
    int pick = rng->UniformInt(0, static_cast<int>(pool.size()) - 1);
    schema.push_back(pool[pick]);
    pool.erase(pool.begin() + pick);
  }
  return schema;
}

// Bit-identical: same schema, same rows, same order.
void ExpectIdenticalRelations(const DbRelation& a, const DbRelation& b,
                              const std::string& label) {
  ASSERT_EQ(a.schema(), b.schema()) << label;
  ASSERT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.data(), b.data()) << label;
}

TEST(ParallelDifferential, JoinAndSemijoinBitIdenticalToSerial) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(53000 + seed);
    const std::string label = "join seed " + std::to_string(seed);
    int num_values = 2 + static_cast<int>(seed % 4);
    DbRelation r = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 200), &rng);
    DbRelation s = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 200), &rng);
    ExpectIdenticalRelations(NaturalJoinParallel(r, s, ForcedDbOptions()),
                             NaturalJoin(r, s), label + " join");
    ExpectIdenticalRelations(SemijoinParallel(r, s, ForcedDbOptions()),
                             Semijoin(r, s), label + " semijoin");
  }
}

TEST(ParallelDifferential, JoinCorpusPartitionedAndStripedMatchSerial) {
  // The full 250-seed join corpus, probed through BOTH parallel designs
  // (radix-partitioned and the frozen striped baseline) with seed-varied
  // partition counts (including non-powers-of-two, which the index
  // rounds up), morsel sizes down to one row, and the forced
  // three-pass parallel build on every other seed. Every combination
  // must reproduce the serial bytes exactly.
  const std::size_t partition_choices[] = {0, 1, 3, 8, 64};
  const std::size_t morsel_choices[] = {1, 37, 2048};
  for (uint64_t seed = 0; seed < 250; ++seed) {
    Rng rng(54000 + seed);
    const std::string label = "corpus seed " + std::to_string(seed);
    int num_values = 2 + static_cast<int>(seed % 5);
    DbRelation r = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 200), &rng);
    DbRelation s = RandomRelation(RandomSchema(5, rng.UniformInt(1, 3), &rng),
                                  num_values, rng.UniformInt(0, 200), &rng);
    ParallelDbOptions options = ForcedDbOptions();
    options.num_partitions = partition_choices[seed % 5];
    options.morsel_rows = morsel_choices[seed % 3];
    options.force_parallel_build = (seed % 2) == 1;
    DbRelation join = NaturalJoin(r, s);
    DbRelation semi = Semijoin(r, s);
    ExpectIdenticalRelations(NaturalJoinParallel(r, s, options), join,
                             label + " partitioned join");
    ExpectIdenticalRelations(SemijoinParallel(r, s, options), semi,
                             label + " partitioned semijoin");
    ExpectIdenticalRelations(NaturalJoinStriped(r, s, options), join,
                             label + " striped join");
    ExpectIdenticalRelations(SemijoinStriped(r, s, options), semi,
                             label + " striped semijoin");
  }
}

TEST(ParallelDifferential, JoinEdgeShapesMatchSerial) {
  Rng rng(61000);
  ParallelDbOptions options = ForcedDbOptions();
  options.num_partitions = 64;
  options.morsel_rows = 64;
  DbRelation r = RandomRelation({0, 1}, 6, 300, &rng);

  // Single-key build side: every s row carries the same join key, so one
  // partition owns a single maximal chain and the other 63 stay empty.
  DbRelation s({1, 2});
  for (int i = 0; i < 200; ++i) s.AddRow({3, rng.UniformInt(0, 5)});
  ExpectIdenticalRelations(NaturalJoinParallel(r, s, options),
                           NaturalJoin(r, s), "single-key join");
  ExpectIdenticalRelations(SemijoinParallel(r, s, options), Semijoin(r, s),
                           "single-key semijoin");

  // Empty probe side, empty build side.
  DbRelation empty_r({0, 1});
  DbRelation empty_s({1, 2});
  ExpectIdenticalRelations(NaturalJoinParallel(empty_r, s, options),
                           NaturalJoin(empty_r, s), "empty probe join");
  ExpectIdenticalRelations(NaturalJoinParallel(r, empty_s, options),
                           NaturalJoin(r, empty_s), "empty build join");
  ExpectIdenticalRelations(SemijoinParallel(empty_r, s, options),
                           Semijoin(empty_r, s), "empty probe semijoin");
  ExpectIdenticalRelations(SemijoinParallel(r, empty_s, options),
                           Semijoin(r, empty_s), "empty build semijoin");

  // No shared attributes: a cross product, every probe row hits the one
  // chain set of the single trivial key.
  DbRelation t = RandomRelation({7, 8}, 4, 50, &rng);
  ExpectIdenticalRelations(NaturalJoinParallel(r, t, options),
                           NaturalJoin(r, t), "cross join");
  ExpectIdenticalRelations(SemijoinParallel(r, t, options), Semijoin(r, t),
                           "cross semijoin");

  // Identical schemas: the whole row is the key (multi-column compare
  // path) and the join has no payload columns at all.
  DbRelation u = RandomRelation({0, 1}, 6, 250, &rng);
  ExpectIdenticalRelations(NaturalJoinParallel(r, u, options),
                           NaturalJoin(r, u), "same-schema join");
  ExpectIdenticalRelations(SemijoinParallel(r, u, options), Semijoin(r, u),
                           "same-schema semijoin");
}

TEST(ParallelDifferential, JoinBitIdenticalAcrossPartitionAndMorselKnobs) {
  // Half the rows share one heavy key: chains of wildly different length
  // land in one partition while most partitions run near-empty, and tiny
  // morsels force many output buffers around the skew. Every knob
  // combination must still concatenate to the serial bytes.
  Rng rng(63000);
  DbRelation r({0, 1}), s({1, 2});
  for (int i = 0; i < 600; ++i) {
    int r_key = rng.UniformInt(0, 1) == 0 ? 0 : rng.UniformInt(0, 40);
    int s_key = rng.UniformInt(0, 1) == 0 ? 0 : rng.UniformInt(0, 40);
    r.AddRow({rng.UniformInt(0, 9), r_key});
    s.AddRow({s_key, rng.UniformInt(0, 9)});
  }
  const DbRelation join = NaturalJoin(r, s);
  const DbRelation semi = Semijoin(r, s);
  for (std::size_t partitions : {1u, 2u, 8u, 256u}) {
    for (std::size_t morsel : {1u, 7u, 4096u}) {
      ParallelDbOptions options = ForcedDbOptions();
      options.num_partitions = partitions;
      options.morsel_rows = morsel;
      const std::string label = "P=" + std::to_string(partitions) +
                                " morsel=" + std::to_string(morsel);
      ExpectIdenticalRelations(NaturalJoinParallel(r, s, options), join,
                               label + " join");
      ExpectIdenticalRelations(SemijoinParallel(r, s, options), semi,
                               label + " semijoin");
    }
  }
}

TEST(ParallelDifferential, ForcedParallelBuildBitIdenticalToSerialBuild) {
  // The three-pass morsel-parallel partition build must lay out exactly
  // the bytes the fused serial build does (original row order within
  // each partition, push-front chains). On machines where the heuristic
  // would never pick it, force_parallel_build runs it anyway — and this
  // fixture runs under tsan in CI, so the histogram/scatter passes get
  // raced for real.
  Rng rng(62000);
  DbRelation r = RandomRelation({0, 1, 2}, 32, 6000, &rng);
  DbRelation s = RandomRelation({2, 3}, 32, 5000, &rng);
  const DbRelation join = NaturalJoin(r, s);
  const DbRelation semi = Semijoin(r, s);
  for (std::size_t partitions : {1u, 8u, 64u}) {
    ParallelDbOptions options = ForcedDbOptions();
    options.force_parallel_build = true;
    options.num_partitions = partitions;
    options.morsel_rows = 512;  // several build and probe morsels per run
    const std::string label =
        "forced build P=" + std::to_string(partitions);
    ExpectIdenticalRelations(NaturalJoinParallel(r, s, options), join,
                             label + " join");
    ExpectIdenticalRelations(SemijoinParallel(r, s, options), semi,
                             label + " semijoin");
  }
}

TEST(ParallelDifferential, LargeJoinCrossesStripeBoundaries) {
  // Big enough that every worker gets several stripes, with key skew so
  // stripes produce different output sizes.
  Rng rng(60001);
  DbRelation r = RandomRelation({0, 1}, 8, 20000, &rng);
  DbRelation s = RandomRelation({1, 2}, 8, 5000, &rng);
  ParallelDbOptions options;
  options.pool = &TestPool();  // default min_probe_rows: threshold crossed
  ExpectIdenticalRelations(NaturalJoinParallel(r, s, options),
                           NaturalJoin(r, s), "large join");
  ExpectIdenticalRelations(SemijoinParallel(r, s, options), Semijoin(r, s),
                           "large semijoin");
}

TEST(ParallelDifferential, FullReducerMatchesSerialOnAcyclicSchemas) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    const std::string label = "reducer seed " + std::to_string(seed);
    Rng rng(77000 + seed);
    // A path schema R_i(a_i, a_i+1) is alpha-acyclic by construction.
    int chain = 3 + static_cast<int>(seed % 5);
    std::vector<DbRelation> serial_rels;
    for (int i = 0; i < chain; ++i) {
      serial_rels.push_back(
          RandomRelation({i, i + 1}, 4, rng.UniformInt(5, 60), &rng));
    }
    std::vector<DbRelation> parallel_rels = serial_rels;
    auto forest = BuildJoinForest(HypergraphOfSchemas(serial_rels));
    ASSERT_TRUE(forest.has_value()) << label;

    YannakakisStats serial_stats;
    YannakakisStats parallel_stats;
    FullReducer(*forest, &serial_rels, &serial_stats);
    FullReducerParallel(*forest, &parallel_rels, ForcedDbOptions(),
                        &parallel_stats);
    for (int i = 0; i < chain; ++i) {
      ExpectIdenticalRelations(parallel_rels[i], serial_rels[i],
                               label + " relation " + std::to_string(i));
    }
    EXPECT_EQ(parallel_stats.semijoin_passes, serial_stats.semijoin_passes)
        << label;
    EXPECT_EQ(parallel_stats.rows_removed, serial_stats.rows_removed)
        << label;
    EXPECT_EQ(parallel_stats.peak_reduced_rows,
              serial_stats.peak_reduced_rows)
        << label;
    EXPECT_EQ(AcyclicJoinNonemptyParallel(*forest, parallel_rels,
                                          ForcedDbOptions()),
              AcyclicJoinNonempty(*forest, serial_rels))
        << label;
  }
}

TEST(ParallelDifferential, FullReducerMatchesSerialOnStarSchemas) {
  // A star R_0(c, a_1), ..., R_k(c, a_k): every leaf semijoins into the
  // same hub, exercising the per-parent mutex commutation argument.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::string label = "star seed " + std::to_string(seed);
    Rng rng(88000 + seed);
    int leaves = 4 + static_cast<int>(seed % 5);
    std::vector<DbRelation> serial_rels;
    serial_rels.push_back(RandomRelation({0, 1}, 5, 80, &rng));  // hub
    for (int i = 0; i < leaves; ++i) {
      serial_rels.push_back(
          RandomRelation({0, 100 + i}, 5, rng.UniformInt(5, 40), &rng));
    }
    std::vector<DbRelation> parallel_rels = serial_rels;
    auto forest = BuildJoinForest(HypergraphOfSchemas(serial_rels));
    ASSERT_TRUE(forest.has_value()) << label;
    FullReducer(*forest, &serial_rels);
    FullReducerParallel(*forest, &parallel_rels, ForcedDbOptions());
    for (std::size_t i = 0; i < serial_rels.size(); ++i) {
      ExpectIdenticalRelations(parallel_rels[i], serial_rels[i],
                               label + " relation " + std::to_string(i));
    }
  }
}

// ---------------------------------------------------------------------------
// Portfolio solver.

TEST(ParallelDifferential, PortfolioAgreesWithSerialSolver) {
  PortfolioOptions options;
  options.pool = &TestPool();
  for (uint64_t seed = 0; seed < 60; ++seed) {
    const std::string label = "portfolio seed " + std::to_string(seed);
    CspInstance csp = BinaryCorpusInstance(seed);
    BacktrackingSolver serial(csp);
    const bool sat = serial.Solve().has_value();
    PortfolioResult result = SolvePortfolio(csp, options);
    ASSERT_TRUE(result.complete) << label;
    EXPECT_EQ(result.solution.has_value(), sat) << label;
    EXPECT_GE(result.winner, 0) << label;
    if (result.solution.has_value()) {
      // SolvePortfolio CHECKs this internally too; assert from the test
      // side so a regression fails rather than aborts.
      EXPECT_TRUE(csp.IsSolution(*result.solution)) << label;
    }
  }
}

TEST(ParallelDifferential, PortfolioHonorsExternalCancellation) {
  exec::CancellationToken token;
  token.RequestCancel();
  PortfolioOptions options;
  options.pool = &TestPool();
  options.cancel = &token;
  // Loose constraints: no wipeout in the pre-search propagation pass (the
  // one decisive path that needs no search nodes), so every racer reaches
  // its first node-0 cancellation poll and aborts.
  Rng rng(424242);
  CspInstance csp = RandomBinaryCsp(40, 6, 300, 0.15, &rng);
  PortfolioResult result = SolvePortfolio(csp, options);
  EXPECT_FALSE(result.complete);
  EXPECT_EQ(result.winner, -1);
  EXPECT_FALSE(result.solution.has_value());
}

TEST(ParallelDifferential, PortfolioConfigNamesAreStable) {
  for (int i = 0; i < kNumPortfolioConfigs; ++i) {
    EXPECT_STRNE(PortfolioConfigName(i), "unknown") << i;
  }
  EXPECT_STREQ(PortfolioConfigName(kNumPortfolioConfigs), "unknown");
}

TEST(ParallelDifferential, SolverCancellationAborts) {
  // Loose constraints (see PortfolioHonorsExternalCancellation): the
  // abort must come from the node-0 cancellation poll, not a wipeout.
  Rng rng(515151);
  CspInstance csp = RandomBinaryCsp(40, 6, 300, 0.15, &rng);
  exec::CancellationToken token;
  token.RequestCancel();
  SolverOptions options;
  options.cancel = &token;
  BacktrackingSolver solver(csp, options);
  EXPECT_FALSE(solver.Solve().has_value());
  EXPECT_TRUE(solver.stats().aborted);

  BackjumpOptions bj_options;
  bj_options.cancel = &token;
  BackjumpSolver bj(csp, bj_options);
  EXPECT_FALSE(bj.Solve().has_value());
  EXPECT_TRUE(bj.stats().aborted);
}

TEST(ParallelDifferential, ShuffledValueOrderStaysComplete) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    CspInstance csp = BinaryCorpusInstance(seed);
    BacktrackingSolver plain(csp);
    SolverOptions shuffled_options;
    shuffled_options.value_order_seed = 0xdeadbeefull + seed;
    BacktrackingSolver shuffled(csp, shuffled_options);
    EXPECT_EQ(shuffled.Solve().has_value(), plain.Solve().has_value())
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace cspdb
