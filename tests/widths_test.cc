// Width-comparison tests (Section 6's "relative merit of various notions
// of width"): incidence graphs, and the empirical relationships between
// primal treewidth, incidence treewidth, and the hypertree-width upper
// bound on random instances.

#include <gtest/gtest.h>

#include "db/algebra.h"
#include "gen/generators.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/hypertree.h"
#include "treewidth/incidence.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Incidence, StructureOfTheBipartiteGraph) {
  Hypergraph h{{{0, 1}, {1, 2, 3}}};
  int n = 0;
  Graph g = IncidenceGraph(h, &n);
  EXPECT_EQ(n, 4);
  EXPECT_EQ(g.n, 6);  // 4 vertices + 2 edge-nodes
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_TRUE(g.HasEdge(1, 4));
  EXPECT_TRUE(g.HasEdge(1, 5));
  EXPECT_TRUE(g.HasEdge(3, 5));
  EXPECT_FALSE(g.HasEdge(0, 5));
  EXPECT_FALSE(g.HasEdge(0, 1));  // no vertex-vertex edges
}

TEST(Incidence, CspVariantCountsAllVariables) {
  CspInstance csp(5, 2);
  csp.AddConstraint({1, 2}, {{0, 0}});
  int n = 0;
  Graph g = IncidenceGraphOfCsp(csp, &n);
  EXPECT_EQ(n, 5);
  EXPECT_EQ(g.n, 6);
}

TEST(Incidence, TreewidthAtMostPrimalPlusOne) {
  // Known fact: incidence treewidth <= primal treewidth + 1. Verified
  // with the exact DP on random small hypergraphs.
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    Hypergraph h;
    int vertices = 6;
    int edges = rng.UniformInt(3, 6);
    for (int e = 0; e < edges; ++e) {
      h.edges.push_back(rng.SampleDistinct(vertices,
                                           rng.UniformInt(2, 3)));
    }
    Graph primal(vertices);
    for (const auto& edge : h.edges) {
      for (std::size_t i = 0; i < edge.size(); ++i) {
        for (std::size_t j = i + 1; j < edge.size(); ++j) {
          primal.AddEdge(edge[i], edge[j]);
        }
      }
    }
    Graph incidence = IncidenceGraph(h);
    EXPECT_LE(ExactTreewidth(incidence), ExactTreewidth(primal) + 1)
        << trial;
  }
}

TEST(Incidence, AcyclicQueriesHaveSmallIncidenceWidth) {
  // Chains: incidence graph is a path-of-stars, treewidth 1.
  Hypergraph chain{{{0, 1}, {1, 2}, {2, 3}}};
  EXPECT_EQ(ExactTreewidth(IncidenceGraph(chain)), 1);
  // A large hyperedge alone: incidence graph is a star, treewidth 1 —
  // while the primal graph is a clique of that arity.
  Hypergraph big{{{0, 1, 2, 3, 4}}};
  EXPECT_EQ(ExactTreewidth(IncidenceGraph(big)), 1);
}

TEST(WidthComparison, HypertreeBeatsTreewidthOnBigArities) {
  // One hyperedge of arity 6: hypertree width 1, primal treewidth 5 —
  // the Section 6 argument for hypertree width.
  Hypergraph h{{{0, 1, 2, 3, 4, 5}}};
  auto hw = HypertreeWidthUpperBound(h);
  ASSERT_TRUE(hw.has_value());
  EXPECT_EQ(*hw, 1);
  Graph primal(6);
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) primal.AddEdge(i, j);
  }
  EXPECT_EQ(ExactTreewidth(primal), 5);
}

TEST(WidthComparison, RandomSweepRelationships) {
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    Hypergraph h;
    int vertices = 6;
    int edges = rng.UniformInt(3, 5);
    for (int e = 0; e < edges; ++e) {
      h.edges.push_back(rng.SampleDistinct(vertices,
                                           rng.UniformInt(2, 4)));
    }
    auto hw = HypertreeWidthUpperBound(h);
    ASSERT_TRUE(hw.has_value()) << trial;
    // Hypertree width bound is at least 1 and never exceeds the number
    // of hyperedges.
    EXPECT_GE(*hw, 1) << trial;
    EXPECT_LE(*hw, edges) << trial;
    // Alpha-acyclic iff our construction achieves width... width 1
    // implies acyclicity is NOT generally true for arbitrary covers, but
    // acyclicity always yields width 1 in this module.
    if (IsAlphaAcyclic(h)) {
      EXPECT_EQ(*hw, 1) << trial;
    }
  }
}

}  // namespace
}  // namespace cspdb
