// Additional Section 7 scenarios: reflexive pairs, cyclic view chains,
// multi-word view languages, and single-letter-alphabet sweeps with
// brute-force cross-checks.

#include <gtest/gtest.h>

#include "views/certain_answers.h"
#include "views/constraint_template.h"
#include "views/rewriting.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(ViewsMore, ReflexivePairs) {
  // Query with epsilon: (c, c) is certain for any c; without epsilon it
  // is not (the empty database is consistent with empty extensions).
  ViewSetting setting;
  setting.alphabet = {"a"};
  setting.views.push_back({"V", ParseRegex("a", setting.alphabet)});
  ViewInstance instance;
  instance.num_objects = 2;
  instance.ext = {{}};
  setting.query = ParseRegex("a*", setting.alphabet);
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 0));
  setting.query = ParseRegex("a+", setting.alphabet);
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 0));
}

TEST(ViewsMore, CyclicViewChain) {
  // V edges forming a cycle 0 -> 1 -> 2 -> 0 with def(V) = a: every pair
  // is certain for the query a+ (paths wrap around the forced cycle).
  ViewSetting setting;
  setting.alphabet = {"a"};
  setting.views.push_back({"V", ParseRegex("a", setting.alphabet)});
  setting.query = ParseRegex("a+", setting.alphabet);
  ViewInstance instance;
  instance.num_objects = 3;
  instance.ext = {{{0, 1}, {1, 2}, {2, 0}}};
  for (int c = 0; c < 3; ++c) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, c, d))
          << c << "," << d;
    }
  }
}

TEST(ViewsMore, MultiWordViewBreaksCertainty) {
  // def(V) = a|aa: the path length is unknown, so "exactly two a's" is
  // not certain even for a chain of two view edges, while "one to four
  // a's" is.
  ViewSetting setting;
  setting.alphabet = {"a"};
  setting.views.push_back({"V", ParseRegex("a|aa", setting.alphabet)});
  ViewInstance instance;
  instance.num_objects = 3;
  instance.ext = {{{0, 1}, {1, 2}}};
  setting.query = ParseRegex("aa", setting.alphabet);
  EXPECT_FALSE(CertainAnswerViaCsp(setting, instance, 0, 2));
  setting.query = ParseRegex("a(%|a)(%|a)(%|a)", setting.alphabet);
  EXPECT_TRUE(CertainAnswerViaCsp(setting, instance, 0, 2));
}

TEST(ViewsMore, BruteForceSweepSingleLetter) {
  Rng rng(3);
  ViewSetting setting;
  setting.alphabet = {"a"};
  setting.views.push_back({"V0", ParseRegex("a", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("aa", setting.alphabet)});
  setting.query = ParseRegex("aaa*", setting.alphabet);
  for (int trial = 0; trial < 8; ++trial) {
    ViewInstance instance;
    instance.num_objects = 3;
    instance.ext.resize(2);
    for (int i = 0; i < 2; ++i) {
      int edges = rng.UniformInt(0, 2);
      for (int e = 0; e < edges; ++e) {
        instance.ext[i].push_back({rng.UniformInt(0, 2),
                                   rng.UniformInt(0, 2)});
      }
    }
    for (int c = 0; c < 3; ++c) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(CertainAnswerViaCsp(setting, instance, c, d),
                  CertainAnswerBruteForce(setting, instance, c, d, 4))
            << trial << " " << c << "," << d;
      }
    }
  }
}

TEST(ViewsMore, RewritingOnCyclicExtensions) {
  // Q = (ab)*; V = ab. Rewriting V* on a V-cycle yields all pairs on the
  // cycle, every one of them certain.
  ViewSetting setting;
  setting.alphabet = {"a", "b"};
  setting.views.push_back({"V", ParseRegex("ab", setting.alphabet)});
  setting.query = ParseRegex("(ab)*", setting.alphabet);
  ViewInstance instance;
  instance.num_objects = 3;
  instance.ext = {{{0, 1}, {1, 2}, {2, 0}}};
  auto rewritten = RewritingAnswers(setting, instance);
  EXPECT_EQ(rewritten.size(), 9u);
  auto certain = CertainAnswers(setting, instance);
  EXPECT_EQ(certain.size(), 9u);
}

}  // namespace
}  // namespace cspdb
