// Tests for weighted-elimination solution counting (the sum-product
// counting analogue of Theorem 6.2).

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "gen/generators.h"
#include "treewidth/counting.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Counting, MatchesSearchOnRandomInstances) {
  Rng rng(3);
  for (int trial = 0; trial < 12; ++trial) {
    CspInstance csp = RandomBinaryCsp(6, 3, 8, 0.4, &rng);
    BacktrackingSolver solver(csp);
    EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(csp),
              solver.CountSolutions())
        << trial;
  }
}

TEST(Counting, MatchesSearchOnTernaryInstances) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    CspInstance csp(5, 2);
    for (int c = 0; c < 4; ++c) {
      std::vector<int> scope = rng.SampleDistinct(5, 3);
      std::vector<Tuple> allowed;
      for (int code = 0; code < 8; ++code) {
        if (rng.Bernoulli(0.7)) {
          allowed.push_back({code & 1, (code >> 1) & 1, (code >> 2) & 1});
        }
      }
      csp.AddConstraint(scope, allowed);
    }
    BacktrackingSolver solver(csp);
    EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(csp),
              solver.CountSolutions())
        << trial;
  }
}

TEST(Counting, KnownClosedForms) {
  // Proper 2-colorings of an even cycle: 2; of an odd cycle: 0.
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(
                ToCspInstance(CycleGraph(6), CliqueGraph(2))),
            2);
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(
                ToCspInstance(CycleGraph(5), CliqueGraph(2))),
            0);
  // Proper 3-colorings of a path with n vertices: 3 * 2^(n-1).
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(
                ToCspInstance(PathGraph(5), CliqueGraph(3))),
            3 * 16);
  // Proper q-colorings of a cycle: (q-1)^n + (-1)^n (q-1).
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(
                ToCspInstance(CycleGraph(6), CliqueGraph(3))),
            64 + 2);
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(
                ToCspInstance(CycleGraph(5), CliqueGraph(3))),
            32 - 2);
}

TEST(Counting, UnconstrainedVariablesMultiply) {
  CspInstance csp(3, 4);
  csp.AddConstraint({0}, {{1}, {2}});
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(csp), 2 * 4 * 4);
}

TEST(Counting, EdgeCases) {
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(CspInstance(0, 3)), 1);
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(CspInstance(2, 0)), 0);
  CspInstance empty_rel(2, 2);
  empty_rel.AddConstraint({0, 1}, {});
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(empty_rel), 0);
}

TEST(Counting, LargeChainStaysPolynomial) {
  // 40-variable chain: 3 * 2^39 solutions would overflow enumeration but
  // elimination computes it instantly... keep it in int64 range with a
  // 30-vertex path and 2 colors: 2 * 1^29 = 2.
  CspInstance csp = ToCspInstance(PathGraph(30), CliqueGraph(2));
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(csp), 2);
  // 3 colors on a 20-path: 3 * 2^19.
  CspInstance three = ToCspInstance(PathGraph(20), CliqueGraph(3));
  EXPECT_EQ(CountSolutionsWithTreewidthHeuristic(three),
            3LL * (1 << 19));
}

}  // namespace
}  // namespace cspdb
