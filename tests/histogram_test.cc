// Property tests for the HDR-style log-bucketed latency histogram
// (obs/histogram.h): bucket geometry and its <=1/128 relative error
// bound, quantile extraction against an exact sorted-vector oracle
// across several latency-shaped distributions, merge associativity,
// zero/negative/overflow handling, and a multi-threaded recording hammer
// (HistogramConcurrency is in the TSan CI regex).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "util/rng.h"

namespace cspdb::obs {
namespace {

// The oracle uses the same nearest-rank convention as
// HistogramSnapshot::ValueAtQuantile, so comparisons measure bucket
// error only, never a rank-definition mismatch.
int64_t ExactQuantile(std::vector<int64_t> sorted_values, double q) {
  const auto count = static_cast<int64_t>(sorted_values.size());
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count))) - 1;
  rank = std::max<int64_t>(0, std::min(rank, count - 1));
  return sorted_values[static_cast<std::size_t>(rank)];
}

// |estimate - exact| <= exact/128 + 1: the documented bucket error bound
// (half a sub-bucket, sub-buckets are 1/64 of their octave) plus one for
// integer midpoint rounding.
void ExpectWithinBucketError(int64_t estimate, int64_t exact,
                             const char* label) {
  const int64_t tolerance = exact / 128 + 1;
  EXPECT_LE(std::llabs(estimate - exact), tolerance)
      << label << ": estimate " << estimate << " vs exact " << exact;
}

void CheckQuantilesAgainstOracle(const std::vector<int64_t>& values,
                                 const char* label) {
  Histogram histogram;
  for (int64_t v : values) histogram.Record(v);
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const HistogramSnapshot snap = histogram.Snapshot();
  ASSERT_EQ(snap.count, static_cast<int64_t>(values.size()));
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    ExpectWithinBucketError(snap.ValueAtQuantile(q), ExactQuantile(sorted, q),
                            label);
  }
}

TEST(HistogramTest, SmallValuesGetExactUnitBuckets) {
  for (int64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    const int index = Histogram::BucketIndex(v);
    EXPECT_EQ(index, static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(index), v);
    EXPECT_EQ(Histogram::BucketUpperBound(index), v + 1);
    EXPECT_EQ(Histogram::BucketRepresentative(index), v);
  }
}

TEST(HistogramTest, BucketGeometryIsMonotoneAndTight) {
  int prev_index = -1;
  for (int64_t v = 0; v < 100'000; v = v < 64 ? v + 1 : v + v / 37 + 1) {
    const int index = Histogram::BucketIndex(v);
    EXPECT_GE(index, prev_index) << "v=" << v;
    prev_index = index;
    // The bucket contains its value...
    EXPECT_LE(Histogram::BucketLowerBound(index), v) << "v=" << v;
    EXPECT_GT(Histogram::BucketUpperBound(index), v) << "v=" << v;
    // ...and its width respects the relative error bound: width <= lo/64
    // for values past the unit range, so the midpoint is within 1/128.
    const int64_t lo = Histogram::BucketLowerBound(index);
    const int64_t width = Histogram::BucketUpperBound(index) - lo;
    if (v >= Histogram::kSubBuckets) {
      EXPECT_LE(width, std::max<int64_t>(1, lo / Histogram::kSubBuckets))
          << "v=" << v;
    }
  }
}

TEST(HistogramTest, BucketBoundsPartitionTheRange) {
  // Consecutive buckets tile [0, 2^kMaxExp] with no gaps or overlaps.
  for (int i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i), Histogram::BucketLowerBound(i + 1))
        << "bucket " << i;
    EXPECT_LT(Histogram::BucketLowerBound(i), Histogram::BucketUpperBound(i))
        << "bucket " << i;
  }
}

TEST(HistogramTest, CountSumMinMaxAreExact) {
  Histogram histogram;
  const std::vector<int64_t> values = {3, 1'000, 77, 123'456'789, 3, 64};
  int64_t sum = 0;
  for (int64_t v : values) {
    histogram.Record(v);
    sum += v;
  }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, static_cast<int64_t>(values.size()));
  EXPECT_EQ(snap.sum, sum);
  EXPECT_EQ(snap.min, 3);
  EXPECT_EQ(snap.max, 123'456'789);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram histogram;
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.ValueAtQuantile(0.5), 0);
}

TEST(HistogramTest, NegativeValuesClampToZeroBucket) {
  Histogram histogram;
  histogram.Record(-5);
  histogram.Record(-1);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 2);
  EXPECT_EQ(snap.sum, 0);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.ValueAtQuantile(1.0), 0);
}

TEST(HistogramTest, OverflowValuesLandInOverflowBucket) {
  Histogram histogram;
  const int64_t huge = (int64_t{1} << Histogram::kMaxExp) + 12345;
  histogram.Record(huge);
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.max, huge);  // min/max/sum stay exact even on overflow
  EXPECT_EQ(snap.buckets[Histogram::kNumBuckets - 1], 1);
  // The quantile clamps the overflow representative into [min, max].
  EXPECT_EQ(snap.ValueAtQuantile(0.5), huge);
}

TEST(HistogramTest, ResetZeroesEverything) {
  Histogram histogram;
  histogram.Record(42);
  histogram.Record(9'000'000);
  histogram.Reset();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0);
  for (int64_t b : snap.buckets) EXPECT_EQ(b, 0);
}

TEST(HistogramProperty, QuantilesMatchOracleOnUniform) {
  Rng rng(12345);
  std::vector<int64_t> values;
  values.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    values.push_back(rng.UniformInt(0, 5'000'000));
  }
  CheckQuantilesAgainstOracle(values, "uniform");
}

TEST(HistogramProperty, QuantilesMatchOracleOnExponential) {
  // Latency-shaped: most values small, a long multiplicative tail.
  Rng rng(987);
  std::vector<int64_t> values;
  values.reserve(20'000);
  for (int i = 0; i < 20'000; ++i) {
    double v = 100.0;
    // Product of uniforms: log-normal-ish spread over ~6 decades.
    for (int j = 0; j < 6; ++j) {
      v *= 1.0 + 9.0 * (static_cast<double>(rng.UniformInt(0, 1'000)) / 1e3);
    }
    values.push_back(static_cast<int64_t>(v));
  }
  CheckQuantilesAgainstOracle(values, "exponential");
}

TEST(HistogramProperty, QuantilesMatchOracleOnConstant) {
  CheckQuantilesAgainstOracle(std::vector<int64_t>(5'000, 777'777),
                              "constant");
}

TEST(HistogramProperty, QuantilesMatchOracleOnBimodal) {
  // Cache-hit/engine-miss shape: two tight modes three decades apart.
  Rng rng(55);
  std::vector<int64_t> values;
  values.reserve(10'000);
  for (int i = 0; i < 10'000; ++i) {
    if (rng.UniformInt(0, 9) < 8) {
      values.push_back(2'000 + rng.UniformInt(0, 500));
    } else {
      values.push_back(3'000'000 + rng.UniformInt(0, 400'000));
    }
  }
  CheckQuantilesAgainstOracle(values, "bimodal");
}

TEST(HistogramProperty, QuantilesMatchOracleOnSmallCounts) {
  // Nearest-rank edge cases: 1 and 2 element histograms.
  CheckQuantilesAgainstOracle({42}, "single");
  CheckQuantilesAgainstOracle({10, 1'000'000}, "pair");
}

TEST(HistogramProperty, MergeIsAssociativeAndOrderInsensitive) {
  Rng rng(2024);
  Histogram h1, h2, h3;
  std::vector<int64_t> all;
  for (int i = 0; i < 3'000; ++i) {
    const int64_t v = rng.UniformInt(0, 10'000'000);
    all.push_back(v);
    (i % 3 == 0 ? h1 : i % 3 == 1 ? h2 : h3).Record(v);
  }
  const HistogramSnapshot s1 = h1.Snapshot();
  const HistogramSnapshot s2 = h2.Snapshot();
  const HistogramSnapshot s3 = h3.Snapshot();

  HistogramSnapshot left = s1;   // (s1 + s2) + s3
  left.Merge(s2);
  left.Merge(s3);
  HistogramSnapshot right = s3;  // s3 + (s2 + s1): reversed order
  right.Merge(s2);
  right.Merge(s1);

  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.min, right.min);
  EXPECT_EQ(left.max, right.max);
  EXPECT_EQ(left.buckets, right.buckets);

  // The merged histogram equals one histogram fed everything.
  Histogram whole;
  for (int64_t v : all) whole.Record(v);
  const HistogramSnapshot expected = whole.Snapshot();
  EXPECT_EQ(left.count, expected.count);
  EXPECT_EQ(left.sum, expected.sum);
  EXPECT_EQ(left.buckets, expected.buckets);
  for (double q : {0.5, 0.99}) {
    EXPECT_EQ(left.ValueAtQuantile(q), expected.ValueAtQuantile(q));
  }
}

TEST(HistogramProperty, MergeWithEmptyIsIdentity) {
  Histogram histogram;
  histogram.Record(5);
  histogram.Record(500);
  HistogramSnapshot snap = histogram.Snapshot();
  const HistogramSnapshot before = snap;
  snap.Merge(HistogramSnapshot{});
  EXPECT_EQ(snap.count, before.count);
  EXPECT_EQ(snap.min, before.min);
  EXPECT_EQ(snap.max, before.max);
  HistogramSnapshot empty;
  empty.Merge(before);
  EXPECT_EQ(empty.count, before.count);
  EXPECT_EQ(empty.min, before.min);
  EXPECT_EQ(empty.max, before.max);
}

// Recording hammer: concurrent recorders across every shard stripe while
// a reader snapshots. Correctness under TSan (no data races) plus exact
// count/sum conservation once every thread joined.
TEST(HistogramConcurrency, ParallelRecordAndSnapshot) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(rng.UniformInt(0, 2'000'000));
      }
    });
  }
  // Concurrent snapshots must be internally usable (quantiles callable),
  // though mid-run values are torn across shards by design.
  for (int i = 0; i < 50; ++i) {
    const HistogramSnapshot snap = histogram.Snapshot();
    EXPECT_GE(snap.count, 0);
    (void)snap.ValueAtQuantile(0.5);
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (int64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

}  // namespace
}  // namespace cspdb::obs
