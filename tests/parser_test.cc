// Tests for the rule parsers and the greedy join optimizer.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "datalog/eval.h"
#include "db/algebra.h"
#include "db/containment.h"
#include "gen/generators.h"
#include "io/rule_parser.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(RuleParser, ParsesThePaperExampleQuery) {
  ConjunctiveQuery q = ParseConjunctiveQuery(
      "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2).");
  EXPECT_EQ(q.head().size(), 2u);
  EXPECT_EQ(q.body().size(), 3u);
  EXPECT_EQ(q.num_variables(), 5);
  EXPECT_EQ(q.body()[0].predicate, "P");
  EXPECT_EQ(q.body_vocabulary().IndexOf("R"),
            q.body_vocabulary().size() - 1);
}

TEST(RuleParser, ParsedQueryBehavesLikeBuiltQuery) {
  ConjunctiveQuery parsed =
      ParseConjunctiveQuery("Q(x, y) :- E(x, z), E(z, y).");
  ConjunctiveQuery built(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  EXPECT_TRUE(AreEquivalent(parsed, built));
}

TEST(RuleParser, RepeatedVariablesAndWhitespace) {
  ConjunctiveQuery q =
      ParseConjunctiveQuery("  Loop ( v )  :-  E ( v , v ) ");
  EXPECT_EQ(q.num_variables(), 1);
  EXPECT_EQ(q.body()[0].args, (std::vector<int>{0, 0}));
}

TEST(RuleParser, RejectsUnsafeQueries) {
  EXPECT_DEATH(ParseConjunctiveQuery("Q(x) :- E(y, z)."), "unsafe query");
  EXPECT_DEATH(ParseConjunctiveQuery("Q(x :- E(x, x)."), "expected");
}

TEST(RuleParser, ParsesDatalogPrograms) {
  DatalogProgram program = ParseDatalogProgram(
      "% transitive closure\n"
      "T(x, y) :- E(x, y).\n"
      "T(x, y) :- T(x, z), E(z, y).\n");
  EXPECT_EQ(program.rules().size(), 2u);
  EXPECT_EQ(program.goal(), "T");
  EXPECT_TRUE(program.IsKDatalog(3));

  Structure g(GraphVocabulary(), 4);
  g.AddTuple(0, {0, 1});
  g.AddTuple(0, {1, 2});
  DatalogResult r = EvaluateSemiNaive(program, g);
  EXPECT_TRUE(r.Facts("T").count({0, 2}) > 0);
  EXPECT_EQ(r.Facts("T").size(), 3u);
}

TEST(RuleParser, ZeroAryGoalAndExplicitGoal) {
  DatalogProgram program = ParseDatalogProgram(
      "P(x, y) :- E(x, y).\n"
      "Q() :- P(x, x).\n");
  EXPECT_EQ(program.goal(), "Q");
  DatalogProgram with_goal = ParseDatalogProgram(
      "Q() :- P(x, x).\n"
      "P(x, y) :- E(x, y).\n",
      "Q");
  EXPECT_EQ(with_goal.goal(), "Q");
}

TEST(RuleParser, MatchesHandBuiltNonTwoColorability) {
  DatalogProgram parsed = ParseDatalogProgram(
      "P(x, y) :- E(x, y).\n"
      "P(x, y) :- P(x, z), E(z, w), E(w, y).\n"
      "Q() :- P(x, x).\n");
  DatalogProgram built = NonTwoColorabilityProgram();
  Rng rng(3);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomUndirectedGraph(6, 0.3, &rng);
    EXPECT_EQ(EvaluateSemiNaive(parsed, g).GoalDerived(parsed),
              EvaluateSemiNaive(built, g).GoalDerived(built))
        << trial;
  }
}

TEST(GreedyJoin, SameContentAsLeftToRight) {
  Rng rng(5);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<DbRelation> rels;
    for (int i = 0; i < 4; ++i) {
      DbRelation r({i, i + 1});
      for (int row = 0; row < 10; ++row) {
        r.AddRow({rng.UniformInt(0, 3), rng.UniformInt(0, 3)});
      }
      rels.push_back(std::move(r));
    }
    DbRelation a = JoinAll(rels);
    DbRelation b = JoinAllGreedy(rels);
    EXPECT_EQ(a.size(), b.size()) << trial;
    for (auto row : a.rows()) {
      // Schemas may be ordered differently; compare via projection.
      Tuple reordered;
      for (int attr : b.schema()) {
        reordered.push_back(row[a.AttributePosition(attr)]);
      }
      EXPECT_TRUE(b.HasRow(reordered)) << trial;
    }
  }
}

TEST(GreedyJoin, AvoidsCrossProductBlowup) {
  // Relations given in an adversarial order: r0 and r1 share nothing;
  // the bridge r2 connects them. Left-to-right pays the cross product.
  Rng rng(7);
  DbRelation r0({0}), r1({1}), bridge({0, 1});
  for (int i = 0; i < 50; ++i) {
    r0.AddRow({i});
    r1.AddRow({i});
  }
  for (int i = 0; i < 50; ++i) bridge.AddRow({i, i});
  std::vector<DbRelation> rels{r0, r1, bridge};
  int64_t naive_peak = 0, greedy_peak = 0;
  JoinAll(rels, &naive_peak);
  JoinAllGreedy(rels, &greedy_peak);
  EXPECT_EQ(naive_peak, 2500);  // the 50 x 50 cross product
  EXPECT_LE(greedy_peak, 50);
}

}  // namespace
}  // namespace cspdb
