// Cross-module integration tests: each exercises several subsystems
// against each other on one scenario, mirroring the paper's "same problem,
// many formulations" theme.

#include <gtest/gtest.h>

#include "boolean/cnf.h"
#include "boolean/hell_nesetril.h"
#include "boolean/horn_sat.h"
#include "boolean/schaefer.h"
#include "consistency/establish.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "datalog/canonical_program.h"
#include "db/algebra.h"
#include "db/containment.h"
#include "games/pebble_game.h"
#include "gen/generators.h"
#include "relational/homomorphism.h"
#include "treewidth/bucket_elimination.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// One problem, five deciders: search, join evaluation, query evaluation,
// bucket elimination, and (for bounded-treewidth inputs) the pebble game.
TEST(Integration, FiveWaysToDecideTheSameCsp) {
  Rng rng(2024);
  for (int trial = 0; trial < 6; ++trial) {
    Structure a = RandomTreewidthDigraph(6, 2, 0.8, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    CspInstance csp = ToCspInstance(a, b);

    bool by_search = BacktrackingSolver(csp).Solve().has_value();
    bool by_join = SolvableByJoin(csp);
    bool by_query = HomomorphismViaQueryEvaluation(a, b);
    bool by_buckets = SolveWithTreewidthHeuristic(csp).has_value();
    bool by_game = PebbleGame(a, b, 3).DuplicatorWins();

    EXPECT_EQ(by_search, by_join) << trial;
    EXPECT_EQ(by_search, by_query) << trial;
    EXPECT_EQ(by_search, by_buckets) << trial;
    EXPECT_EQ(by_search, by_game) << trial;  // exact: treewidth < 3
  }
}

// 2-colorability through every lens the paper offers.
TEST(Integration, TwoColorabilityAcrossTheStack) {
  Rng rng(2025);
  Structure k2 = CliqueGraph(2);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomUndirectedGraph(6, 0.3, &rng);
    bool colorable = IsBipartite(g);

    EXPECT_EQ(FindHomomorphism(g, k2).has_value(), colorable);
    EXPECT_EQ(DecideHColoring(g, k2).colorable, colorable);
    EXPECT_EQ(PebbleGame(g, k2, 3).DuplicatorWins(), colorable);
    EXPECT_EQ(!SpoilerWinsViaDatalog(g, k2, 3), colorable);
    EXPECT_EQ(KConsistencyDecides(g, k2, 3), colorable);
    CspInstance csp = ToCspInstance(g, k2);
    EXPECT_EQ(BacktrackingSolver(csp).Solve().has_value(), colorable);
  }
}

// Horn satisfiability: unit propagation, Schaefer dispatch, and the
// 2-consistency (arc consistency) decision all agree; ¬CSP(B_horn) is
// the paper's canonical width-1 Datalog family.
TEST(Integration, HornSatAcrossTheStack) {
  Rng rng(2026);
  Vocabulary voc = HornVocabulary(3);
  Structure b = HornTemplate(3);
  for (int trial = 0; trial < 6; ++trial) {
    CnfFormula phi = RandomHorn(6, rng.UniformInt(6, 16), 3, &rng);
    Structure a = CnfToStructure(phi, voc);
    bool sat = SolveHorn(phi).has_value();

    EXPECT_EQ(FindHomomorphism(a, b).has_value(), sat) << trial;
    BooleanSolveResult schaefer = SolveBooleanCsp(a, b);
    ASSERT_TRUE(schaefer.decided);
    EXPECT_EQ(schaefer.solvable, sat) << trial;
  }
}

// Query containment as CSP: phi_B contained in phi_A iff hom(A, B) iff
// CSP(A, B) solvable (Propositions 2.1 + 2.3 chained).
TEST(Integration, ContainmentEqualsCspSolvability) {
  Rng rng(2027);
  for (int trial = 0; trial < 6; ++trial) {
    Structure a = RandomDigraph(4, 0.4, &rng);
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    if (a.TotalTuples() == 0 || b.TotalTuples() == 0) continue;
    ConjunctiveQuery phi_a = ConjunctiveQuery::FromStructure(a);
    ConjunctiveQuery phi_b = ConjunctiveQuery::FromStructure(b);
    bool contained = IsContainedIn(phi_b, phi_a);
    EXPECT_EQ(contained, FindHomomorphism(a, b).has_value()) << trial;
    EXPECT_EQ(contained, SolvableByJoin(ToCspInstance(a, b))) << trial;
  }
}

// Establishing strong k-consistency then solving never changes the
// answer, and the established instance is solvable backtrack-free when
// the input has treewidth < k.
TEST(Integration, EstablishThenSolve) {
  Rng rng(2028);
  for (int trial = 0; trial < 5; ++trial) {
    Structure a = RandomTreewidthDigraph(5, 1, 0.9, &rng);  // forest-like
    Structure b = RandomDigraph(3, 0.5, &rng, /*allow_loops=*/true);
    bool solvable = FindHomomorphism(a, b).has_value();
    EstablishResult established = EstablishStrongKConsistency(a, b, 2);
    if (!established.possible) {
      EXPECT_FALSE(solvable) << trial;
      continue;
    }
    BacktrackingSolver solver(established.csp);
    EXPECT_EQ(solver.Solve().has_value(), solvable) << trial;
  }
}

}  // namespace
}  // namespace cspdb
