// Algebraic-law property tests for the relational algebra and the
// automata layer: the identities query optimizers rely on, checked on
// random inputs.

#include <gtest/gtest.h>

#include <algorithm>

#include "db/algebra.h"
#include "db/relation.h"
#include "rpq/nfa.h"
#include "rpq/regex.h"
#include "util/rng.h"

namespace cspdb {
namespace {

DbRelation RandomRelation(const std::vector<int>& schema, int rows,
                          int domain, Rng* rng) {
  DbRelation r(schema);
  for (int i = 0; i < rows; ++i) {
    Tuple t;
    for (std::size_t j = 0; j < schema.size(); ++j) {
      t.push_back(rng->UniformInt(0, domain - 1));
    }
    r.AddRow(std::move(t));
  }
  return r;
}

// Set equality up to column order.
bool SameContent(const DbRelation& a, const DbRelation& b) {
  if (a.size() != b.size()) return false;
  std::vector<int> positions;
  for (int attr : a.schema()) {
    int p = b.AttributePosition(attr);
    if (p < 0) return false;
    positions.push_back(p);
  }
  for (auto row : b.rows()) {
    Tuple reordered;
    for (int p : positions) reordered.push_back(row[p]);
    if (!a.HasRow(reordered)) return false;
  }
  return true;
}

TEST(AlgebraLaws, JoinIsCommutative) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    DbRelation r = RandomRelation({0, 1}, 12, 4, &rng);
    DbRelation s = RandomRelation({1, 2}, 12, 4, &rng);
    EXPECT_TRUE(SameContent(NaturalJoin(r, s), NaturalJoin(s, r)))
        << trial;
  }
}

TEST(AlgebraLaws, JoinIsAssociative) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    DbRelation r = RandomRelation({0, 1}, 10, 3, &rng);
    DbRelation s = RandomRelation({1, 2}, 10, 3, &rng);
    DbRelation t = RandomRelation({2, 3}, 10, 3, &rng);
    EXPECT_TRUE(SameContent(NaturalJoin(NaturalJoin(r, s), t),
                            NaturalJoin(r, NaturalJoin(s, t))))
        << trial;
  }
}

TEST(AlgebraLaws, JoinIsIdempotent) {
  Rng rng(7);
  DbRelation r = RandomRelation({0, 1}, 15, 4, &rng);
  EXPECT_TRUE(SameContent(NaturalJoin(r, r), r));
}

TEST(AlgebraLaws, SemijoinAbsorption) {
  // (r semijoin s) join s == r join s.
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    DbRelation r = RandomRelation({0, 1}, 12, 4, &rng);
    DbRelation s = RandomRelation({1, 2}, 12, 4, &rng);
    EXPECT_TRUE(SameContent(NaturalJoin(Semijoin(r, s), s),
                            NaturalJoin(r, s)))
        << trial;
  }
}

TEST(AlgebraLaws, SemijoinIsProjectionOfJoin) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    DbRelation r = RandomRelation({0, 1}, 12, 4, &rng);
    DbRelation s = RandomRelation({1, 2}, 12, 4, &rng);
    DbRelation expected = Project(NaturalJoin(r, s), {0, 1});
    EXPECT_TRUE(SameContent(Semijoin(r, s), expected)) << trial;
  }
}

TEST(AlgebraLaws, ProjectionCascade) {
  Rng rng(13);
  DbRelation r = RandomRelation({0, 1, 2}, 20, 3, &rng);
  DbRelation direct = Project(r, {0});
  DbRelation cascaded = Project(Project(r, {0, 1}), {0});
  EXPECT_TRUE(SameContent(direct, cascaded));
}

TEST(AlgebraLaws, SelectionCommutesWithJoin) {
  // sigma_{0=c}(r join s) == sigma_{0=c}(r) join s when attr 0 is r's.
  Rng rng(17);
  for (int trial = 0; trial < 8; ++trial) {
    DbRelation r = RandomRelation({0, 1}, 12, 3, &rng);
    DbRelation s = RandomRelation({1, 2}, 12, 3, &rng);
    DbRelation lhs = SelectEquals(NaturalJoin(r, s), 0, 1);
    DbRelation rhs = NaturalJoin(SelectEquals(r, 0, 1), s);
    EXPECT_TRUE(SameContent(lhs, rhs)) << trial;
  }
}

const std::vector<std::string> kAb{"a", "b"};

bool Equivalent(const std::string& p1, const std::string& p2) {
  Dfa d1 = Determinize(Nfa::FromRegex(ParseRegex(p1, kAb), 2));
  Dfa d2 = Determinize(Nfa::FromRegex(ParseRegex(p2, kAb), 2));
  return SameLanguage(d1, d2);
}

TEST(AutomataLaws, KleeneIdentities) {
  EXPECT_TRUE(Equivalent("(a*)*", "a*"));
  EXPECT_TRUE(Equivalent("a*a*", "a*"));
  EXPECT_TRUE(Equivalent("(a|b)*", "(a*b*)*"));
  EXPECT_TRUE(Equivalent("%|aa*", "a*"));
  EXPECT_TRUE(Equivalent("a(ba)*", "(ab)*a"));
  EXPECT_FALSE(Equivalent("(ab)*", "a*b*"));
}

TEST(AutomataLaws, UnionAndConcatDistribute) {
  EXPECT_TRUE(Equivalent("a(b|a)", "ab|aa"));
  EXPECT_TRUE(Equivalent("(a|b)b", "ab|bb"));
  EXPECT_TRUE(Equivalent("a|a", "a"));
  EXPECT_TRUE(Equivalent("~|a", "a"));
  EXPECT_TRUE(Equivalent("~a", "~"));
  EXPECT_TRUE(Equivalent("%a", "a"));
}

TEST(AutomataLaws, ComplementIsInvolution) {
  Rng rng(19);
  const std::vector<std::string> patterns{"(ab)*", "a*b", "a|bb",
                                          "(a|b)*a"};
  for (const std::string& p : patterns) {
    Dfa d = Determinize(Nfa::FromRegex(ParseRegex(p, kAb), 2));
    EXPECT_TRUE(SameLanguage(d, d.Complement().Complement())) << p;
    // L and its complement partition every word: their intersection is
    // empty and their union is total.
    EXPECT_TRUE(d.Product(d.Complement(), true).IsEmpty()) << p;
    EXPECT_TRUE(
        d.Product(d.Complement(), false).Complement().IsEmpty())
        << p;
  }
}

TEST(AutomataLaws, MinimizationIsIdempotent) {
  const std::vector<std::string> patterns{"(ab)*", "a*b*", "(a|b)*abb"};
  for (const std::string& p : patterns) {
    Dfa d = Determinize(Nfa::FromRegex(ParseRegex(p, kAb), 2));
    Dfa m1 = d.Minimize();
    Dfa m2 = m1.Minimize();
    EXPECT_EQ(m1.num_states, m2.num_states) << p;
    EXPECT_TRUE(SameLanguage(m1, m2)) << p;
  }
}

}  // namespace
}  // namespace cspdb
