// Tests for the automata substrate and RPQ evaluation (Section 7).

#include <gtest/gtest.h>

#include "rpq/graphdb.h"
#include "rpq/nfa.h"
#include "rpq/regex.h"
#include "rpq/rpq_eval.h"
#include "util/rng.h"

namespace cspdb {
namespace {

const std::vector<std::string> kAb{"a", "b"};

std::vector<int> Word(std::initializer_list<int> symbols) {
  return std::vector<int>(symbols);
}

TEST(Regex, ParseAndPrint) {
  Regex r = ParseRegex("(ab)*|b+", kAb);
  EXPECT_EQ(r.kind(), Regex::Kind::kUnion);
  Regex simple = ParseRegex("ab", kAb);
  EXPECT_EQ(simple.ToString(kAb), "ab");
}

TEST(Regex, EpsilonAndEmpty) {
  Nfa eps = Nfa::FromRegex(ParseRegex("%", kAb), 2);
  EXPECT_TRUE(eps.Accepts({}));
  EXPECT_FALSE(eps.Accepts(Word({0})));
  Nfa empty = Nfa::FromRegex(ParseRegex("~", kAb), 2);
  EXPECT_FALSE(empty.Accepts({}));
}

TEST(Nfa, ThompsonAcceptance) {
  Nfa nfa = Nfa::FromRegex(ParseRegex("(ab)*", kAb), 2);
  EXPECT_TRUE(nfa.Accepts({}));
  EXPECT_TRUE(nfa.Accepts(Word({0, 1})));
  EXPECT_TRUE(nfa.Accepts(Word({0, 1, 0, 1})));
  EXPECT_FALSE(nfa.Accepts(Word({0})));
  EXPECT_FALSE(nfa.Accepts(Word({1, 0})));
}

TEST(Nfa, PlusAndOptional) {
  Nfa plus = Nfa::FromRegex(ParseRegex("a+", kAb), 2);
  EXPECT_FALSE(plus.Accepts({}));
  EXPECT_TRUE(plus.Accepts(Word({0})));
  EXPECT_TRUE(plus.Accepts(Word({0, 0, 0})));
  Nfa opt = Nfa::FromRegex(ParseRegex("ab?", kAb), 2);
  EXPECT_TRUE(opt.Accepts(Word({0})));
  EXPECT_TRUE(opt.Accepts(Word({0, 1})));
  EXPECT_FALSE(opt.Accepts(Word({1})));
}

TEST(Nfa, RemoveEpsilonPreservesLanguage) {
  Rng rng(3);
  Nfa nfa = Nfa::FromRegex(ParseRegex("(a|bb)*a", kAb), 2);
  Nfa eps_free = nfa.RemoveEpsilon();
  for (int len = 0; len <= 6; ++len) {
    for (int code = 0; code < (1 << len); ++code) {
      std::vector<int> word(len);
      for (int i = 0; i < len; ++i) word[i] = (code >> i) & 1;
      EXPECT_EQ(nfa.Accepts(word), eps_free.Accepts(word));
    }
  }
  for (const auto& transitions : eps_free.transitions) {
    for (const auto& [symbol, target] : transitions) {
      EXPECT_NE(symbol, Nfa::kEpsilonSym);
    }
  }
}

TEST(Dfa, DeterminizePreservesLanguage) {
  Nfa nfa = Nfa::FromRegex(ParseRegex("(a|b)*abb", kAb), 2);
  Dfa dfa = Determinize(nfa);
  for (int len = 0; len <= 7; ++len) {
    for (int code = 0; code < (1 << len); ++code) {
      std::vector<int> word(len);
      for (int i = 0; i < len; ++i) word[i] = (code >> i) & 1;
      EXPECT_EQ(nfa.Accepts(word), dfa.Accepts(word));
    }
  }
}

TEST(Dfa, ComplementAndProduct) {
  Dfa a_star = Determinize(Nfa::FromRegex(ParseRegex("a*", kAb), 2));
  Dfa not_a_star = a_star.Complement();
  EXPECT_TRUE(a_star.Accepts(Word({0, 0})));
  EXPECT_FALSE(not_a_star.Accepts(Word({0, 0})));
  EXPECT_TRUE(not_a_star.Accepts(Word({1})));
  // Intersection of a* and (a|b)b... empty on short words except none.
  Dfa ends_b = Determinize(Nfa::FromRegex(ParseRegex("(a|b)*b", kAb), 2));
  Dfa both = a_star.Product(ends_b, /*intersection=*/true);
  EXPECT_TRUE(both.IsEmpty());
}

TEST(Dfa, MinimizeReducesAndPreserves) {
  Nfa nfa = Nfa::FromRegex(ParseRegex("(ab)*", kAb), 2);
  Dfa dfa = Determinize(nfa);
  Dfa min = dfa.Minimize();
  EXPECT_LE(min.num_states, dfa.num_states);
  EXPECT_TRUE(SameLanguage(dfa, min));
  // Minimal DFA for (ab)* has 3 states (start/accept, after-a, sink).
  EXPECT_EQ(min.num_states, 3);
}

TEST(Dfa, ShortestWord) {
  Dfa dfa = Determinize(Nfa::FromRegex(ParseRegex("abb|ba", kAb), 2));
  std::vector<int> word;
  ASSERT_TRUE(dfa.ShortestWord(&word));
  EXPECT_EQ(word, Word({1, 0}));  // "ba" is shortest
  Dfa empty = Determinize(Nfa::FromRegex(ParseRegex("~", kAb), 2));
  EXPECT_FALSE(empty.ShortestWord(&word));
}

TEST(Dfa, SameLanguageDistinguishes) {
  Dfa d1 = Determinize(Nfa::FromRegex(ParseRegex("(ab)*", kAb), 2));
  Dfa d2 = Determinize(Nfa::FromRegex(ParseRegex("%|a(ba)*b", kAb), 2));
  EXPECT_TRUE(SameLanguage(d1, d2));
  Dfa d3 = Determinize(Nfa::FromRegex(ParseRegex("(ab)+", kAb), 2));
  EXPECT_FALSE(SameLanguage(d1, d3));
}

TEST(GraphDb, EdgesDeduplicated) {
  GraphDb db(3, 2);
  db.AddEdge(0, 0, 1);
  db.AddEdge(0, 0, 1);
  db.AddEdge(1, 1, 2);
  EXPECT_EQ(db.NumEdges(), 2);
  EXPECT_TRUE(db.HasEdge(0, 0, 1));
  EXPECT_FALSE(db.HasEdge(1, 0, 2));
}

TEST(RpqEval, PathQueries) {
  // 0 -a-> 1 -b-> 2, 0 -b-> 2.
  GraphDb db(3, 2);
  db.AddEdge(0, 0, 1);
  db.AddEdge(1, 1, 2);
  db.AddEdge(0, 1, 2);
  auto ab = EvaluateRpq(db, ParseRegex("ab", kAb));
  EXPECT_EQ(ab, (std::vector<std::pair<int, int>>{{0, 2}}));
  auto b = EvaluateRpq(db, ParseRegex("b", kAb));
  EXPECT_EQ(b.size(), 2u);
}

TEST(RpqEval, KleeneStarReachability) {
  // A 4-cycle labeled a: a* reaches everything from everywhere.
  GraphDb db(4, 1);
  for (int i = 0; i < 4; ++i) db.AddEdge(i, 0, (i + 1) % 4);
  auto all = EvaluateRpq(db, ParseRegex("a*", {"a"}));
  EXPECT_EQ(all.size(), 16u);
  auto one = EvaluateRpq(db, ParseRegex("a", {"a"}));
  EXPECT_EQ(one.size(), 4u);
}

TEST(RpqEval, EpsilonGivesDiagonal) {
  GraphDb db(3, 1);
  auto diag = EvaluateRpq(db, ParseRegex("%", {"a"}));
  EXPECT_EQ(diag.size(), 3u);
  for (const auto& [x, y] : diag) EXPECT_EQ(x, y);
}

TEST(RpqEval, HoldsSpecificPair) {
  GraphDb db(5, 2);
  db.AddEdge(0, 0, 1);
  db.AddEdge(1, 0, 2);
  db.AddEdge(2, 1, 3);
  Nfa q = Nfa::FromRegex(ParseRegex("aab", kAb), 2);
  EXPECT_TRUE(RpqHolds(db, q, 0, 3));
  EXPECT_FALSE(RpqHolds(db, q, 1, 3));
  EXPECT_FALSE(RpqHolds(db, q, 0, 4));
}

}  // namespace
}  // namespace cspdb
