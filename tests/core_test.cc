// Tests for homomorphic cores and Chandra-Merlin query minimization.

#include <gtest/gtest.h>

#include "boolean/hell_nesetril.h"
#include "db/containment.h"
#include "gen/generators.h"
#include "relational/core.h"
#include "relational/structure_ops.h"
#include "relational/homomorphism.h"
#include "util/rng.h"

namespace cspdb {
namespace {

TEST(Core, EvenCycleRetractsToEdge) {
  Structure core = CoreOf(CycleGraph(6));
  EXPECT_EQ(core.domain_size(), 2);
  EXPECT_TRUE(HomomorphicallyEquivalent(core, CycleGraph(6)));
  EXPECT_TRUE(IsCore(core));
}

TEST(Core, OddCycleIsItsOwnCore) {
  Structure c5 = CycleGraph(5);
  EXPECT_TRUE(IsCore(c5));
  EXPECT_EQ(CoreOf(c5).domain_size(), 5);
}

TEST(Core, CliquesAreCores) {
  for (int k = 2; k <= 4; ++k) {
    EXPECT_TRUE(IsCore(CliqueGraph(k))) << k;
  }
}

TEST(Core, DisjointUnionCollapses) {
  // C4 plus an isolated triangle: the core is the triangle (C4 maps into
  // it).
  Structure g(GraphVocabulary(), 7);
  for (int i = 0; i < 4; ++i) {
    g.AddTuple(0, {i, (i + 1) % 4});
    g.AddTuple(0, {(i + 1) % 4, i});
  }
  int t[3] = {4, 5, 6};
  for (int i = 0; i < 3; ++i) {
    g.AddTuple(0, {t[i], t[(i + 1) % 3]});
    g.AddTuple(0, {t[(i + 1) % 3], t[i]});
  }
  Structure core = CoreOf(g);
  EXPECT_EQ(core.domain_size(), 3);
  EXPECT_TRUE(HomomorphicallyEquivalent(core, CliqueGraph(3)));
}

TEST(Core, IdempotentAndEquivalent) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    Structure g = RandomDigraph(5, 0.3, &rng, /*allow_loops=*/true);
    Structure core = CoreOf(g);
    EXPECT_TRUE(IsCore(core)) << trial;
    EXPECT_TRUE(HomomorphicallyEquivalent(g, core)) << trial;
    EXPECT_EQ(CoreOf(core).domain_size(), core.domain_size()) << trial;
  }
}

TEST(Core, LoopCollapsesEverything) {
  Structure g = MakeUndirectedGraph(4, {{0, 0}, {0, 1}, {1, 2}, {2, 3}});
  Structure core = CoreOf(g);
  EXPECT_EQ(core.domain_size(), 1);
}

TEST(Core, IsomorphicInputsGiveIsomorphicCores) {
  // Cores are canonical: relabeling the input cannot change the core's
  // isomorphism type.
  Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    Structure g = RandomDigraph(5, 0.35, &rng, /*allow_loops=*/true);
    // A relabeled copy: apply the permutation (0 1 2 3 4) -> rotate.
    int n = g.domain_size();
    Structure rotated(g.vocabulary(), n);
    for (const Tuple& t : g.tuples(0)) {
      rotated.AddTuple(0, {(t[0] + 1) % n, (t[1] + 1) % n});
    }
    EXPECT_TRUE(AreIsomorphic(g, rotated)) << trial;
    EXPECT_TRUE(AreIsomorphic(CoreOf(g), CoreOf(rotated))) << trial;
  }
}

TEST(Isomorphism, BasicProperties) {
  EXPECT_TRUE(AreIsomorphic(CycleGraph(5), CycleGraph(5)));
  EXPECT_FALSE(AreIsomorphic(CycleGraph(5), CycleGraph(6)));
  EXPECT_FALSE(AreIsomorphic(PathGraph(4), CycleGraph(4)));
  // Same size and edge count, different shape: path P4 vs star K1,3.
  Structure star = MakeUndirectedGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_FALSE(AreIsomorphic(PathGraph(4), star));
}

TEST(MinimizeQuery, RemovesRedundantAtom) {
  // Q(x,y) :- E(x,z), E(z,y), E(x,w): the last atom is implied.
  ConjunctiveQuery q(4, {0, 1},
                     {{"E", {0, 2}}, {"E", {2, 1}}, {"E", {0, 3}}});
  ConjunctiveQuery minimized = MinimizeQuery(q);
  EXPECT_EQ(minimized.body().size(), 2u);
  EXPECT_TRUE(AreEquivalent(q, minimized));
}

TEST(MinimizeQuery, KeepsIrredundantQueries) {
  ConjunctiveQuery q(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  ConjunctiveQuery minimized = MinimizeQuery(q);
  EXPECT_EQ(minimized.body().size(), 2u);
  EXPECT_TRUE(AreEquivalent(q, minimized));
}

TEST(MinimizeQuery, CollapsesDuplicatedPattern) {
  // Two parallel 2-paths between the head variables fold into one.
  ConjunctiveQuery q(4, {0, 1},
                     {{"E", {0, 2}},
                      {"E", {2, 1}},
                      {"E", {0, 3}},
                      {"E", {3, 1}}});
  ConjunctiveQuery minimized = MinimizeQuery(q);
  EXPECT_EQ(minimized.body().size(), 2u);
  EXPECT_TRUE(AreEquivalent(q, minimized));
}

TEST(MinimizeQuery, BooleanQueries) {
  // Boolean query of an even cycle minimizes to a single (two-way) edge.
  ConjunctiveQuery q = ConjunctiveQuery::FromStructure(CycleGraph(4));
  ConjunctiveQuery minimized = MinimizeQuery(q);
  EXPECT_EQ(minimized.num_variables(), 2);
  EXPECT_TRUE(AreEquivalent(q, minimized));
}

}  // namespace
}  // namespace cspdb
