// Differential tests for conjunctive-query evaluation: the join-based
// Evaluate() against a brute-force assignment enumerator, on random
// queries and databases.

#include <gtest/gtest.h>

#include <vector>

#include "boolean/hell_nesetril.h"
#include "db/conjunctive_query.h"
#include "gen/generators.h"
#include "util/rng.h"

namespace cspdb {
namespace {

// Brute force: enumerate all assignments of the query's variables.
DbRelation BruteForceEvaluate(const ConjunctiveQuery& q,
                              const Structure& db) {
  std::vector<int> out_schema(q.head().size());
  for (std::size_t i = 0; i < out_schema.size(); ++i) {
    out_schema[i] = static_cast<int>(i);
  }
  DbRelation out(out_schema);
  int n = q.num_variables();
  int d = db.domain_size();
  std::vector<int> assignment(n, 0);
  if (n == 0) {
    out.AddRow(Tuple{});
    return out;
  }
  while (true) {
    bool satisfied = true;
    for (const Atom& atom : q.body()) {
      int rel = db.vocabulary().IndexOf(atom.predicate);
      if (rel < 0) {
        satisfied = false;
        break;
      }
      Tuple image;
      for (int v : atom.args) image.push_back(assignment[v]);
      if (!db.HasTuple(rel, image)) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) {
      Tuple head;
      for (int h : q.head()) head.push_back(assignment[h]);
      out.AddRow(std::move(head));
    }
    int pos = n - 1;
    while (pos >= 0 && ++assignment[pos] == d) assignment[pos--] = 0;
    if (pos < 0) break;
    if (d == 0) break;
  }
  return out;
}

ConjunctiveQuery RandomQuery(Rng* rng) {
  int vars = rng->UniformInt(2, 4);
  int atoms = rng->UniformInt(1, 4);
  std::vector<Atom> body;
  std::vector<char> used(vars, 0);
  for (int i = 0; i < atoms; ++i) {
    int a = rng->UniformInt(0, vars - 1);
    int b = rng->UniformInt(0, vars - 1);
    used[a] = used[b] = 1;
    body.push_back({"E", {a, b}});
  }
  // Head: up to two body variables.
  std::vector<int> head;
  for (int v = 0; v < vars && head.size() < 2; ++v) {
    if (used[v]) head.push_back(v);
  }
  // Drop unused variables by remapping (keep it simple: ensure all
  // variables occur by adding self-loops for unused ones).
  for (int v = 0; v < vars; ++v) {
    if (!used[v]) body.push_back({"E", {v, v}});
  }
  return ConjunctiveQuery(vars, std::move(head), std::move(body));
}

TEST(EvaluateDifferential, RandomQueriesOnRandomDatabases) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    ConjunctiveQuery q = RandomQuery(&rng);
    Structure db = RandomDigraph(4, 0.4, &rng, /*allow_loops=*/true);
    DbRelation fast = Evaluate(q, db);
    DbRelation slow = BruteForceEvaluate(q, db);
    EXPECT_EQ(fast.size(), slow.size()) << trial << " " << q.ToString();
    for (auto row : slow.rows()) {
      EXPECT_TRUE(fast.HasRow(row.ToTuple())) << trial << " " << q.ToString();
    }
  }
}

TEST(EvaluateDifferential, EmptyDatabase) {
  ConjunctiveQuery q(2, {0}, {{"E", {0, 1}}});
  Structure db(GraphVocabulary(), 0);
  EXPECT_TRUE(Evaluate(q, db).empty());
  EXPECT_TRUE(BruteForceEvaluate(q, db).empty());
}

TEST(EvaluateDifferential, BooleanQueriesAgree) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Structure pattern = RandomDigraph(3, 0.5, &rng);
    if (pattern.TotalTuples() == 0) continue;
    ConjunctiveQuery q = ConjunctiveQuery::FromStructure(pattern);
    Structure db = RandomDigraph(4, 0.5, &rng, /*allow_loops=*/true);
    EXPECT_EQ(!Evaluate(q, db).empty(),
              !BruteForceEvaluate(q, db).empty())
        << trial;
  }
}

}  // namespace
}  // namespace cspdb
