#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by src/obs/trace.cc.

Checks, in order:
  1. the file is valid JSON with the {"traceEvents": [...]} shape;
  2. every event carries the required fields for its phase;
  3. B/E duration events nest and balance per thread (LIFO discipline);
  4. "M" thread_name metadata events carry a string args.name, no tid is
     named twice, and no track name is bound to two tids (a duplicate
     binding means the tid registry handed out colliding ids — the bug the
     sequential registry replaced hashed ids to fix);
  5. s/f flow events are well-formed: every flow event carries an id and
     is emitted while a B span is open on its thread (flow arrows bind to
     the enclosing slice — an unenclosed flow event renders nowhere);
     each (name, id) flow is started at most once and finished exactly
     once, after its start, and no start is left dangling;
  6. (optional) spans cover the subsystems named with --require, given as
     name prefixes before the first '.' (e.g. "csp,consistency,db");
  7. (optional) --require-flows N: at least N completed flows, each with
     its start and finish on *different* threads (a same-thread flow
     means request spans never actually hopped to a worker lane).

Exit status 0 on success, 1 with a diagnostic on the first violation.

Usage: validate_trace.py trace.json [--require csp,consistency,db,datalog]
                        [--require-flows N]
"""

import argparse
import json
import sys

DURATION_PHASES = {"B", "E"}
FLOW_PHASES = {"s", "f"}
KNOWN_PHASES = DURATION_PHASES | FLOW_PHASES | {"i", "C", "M"}


def fail(msg: str) -> int:
    sys.stderr.write(f"validate_trace: {msg}\n")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_path")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated subsystem prefixes that must emit spans",
    )
    parser.add_argument(
        "--require-flows",
        type=int,
        default=0,
        metavar="N",
        help="require at least N completed cross-thread flows",
    )
    opts = parser.parse_args()

    try:
        with open(opts.trace_path) as f:
            trace = json.load(f)
    except OSError as e:
        return fail(f"cannot read {opts.trace_path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return fail(f"{opts.trace_path} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return fail("top level must be an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents must be an array")

    # Per-thread stacks of open B spans; E must match the innermost one.
    open_spans: dict = {}
    span_subsystems = set()
    tid_to_name: dict = {}  # thread_name metadata: tid -> track name
    name_to_tid: dict = {}  # ...and the reverse binding
    # (name, id) -> (start tid, start ts) for started, unfinished flows.
    open_flows: dict = {}
    finished_flows = 0
    cross_thread_flows = 0
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                return fail(f"{where}: missing field {field!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            return fail(f"{where}: name must be a nonempty string")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            return fail(f"{where}: ts must be a nonnegative number")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            return fail(f"{where}: instant event needs scope s in t/p/g")
        if ph == "C" and not isinstance(
            ev.get("args", {}).get("value"), (int, float)
        ):
            return fail(f"{where}: counter event needs numeric args.value")
        if ph == "M":
            if ev["name"] != "thread_name":
                return fail(
                    f"{where}: unsupported metadata event {ev['name']!r}"
                )
            track = ev.get("args", {}).get("name")
            if not isinstance(track, str) or not track:
                return fail(
                    f"{where}: thread_name needs a nonempty string args.name"
                )
            tid = ev["tid"]
            if tid in tid_to_name and tid_to_name[tid] != track:
                return fail(
                    f"{where}: tid {tid} bound to both "
                    f"{tid_to_name[tid]!r} and {track!r}"
                )
            if track in name_to_tid and name_to_tid[track] != tid:
                return fail(
                    f"{where}: track name {track!r} bound to both tid "
                    f"{name_to_tid[track]} and tid {tid} (colliding ids)"
                )
            tid_to_name[tid] = track
            name_to_tid[track] = tid
        if ph in FLOW_PHASES:
            if not isinstance(ev.get("id"), int):
                return fail(f"{where}: flow event needs an integer id")
            if not open_spans.get(ev["tid"]):
                return fail(
                    f"{where}: flow {ph!r} {ev['name']!r} id {ev['id']} "
                    f"emitted with no open span on tid {ev['tid']} "
                    f"(flow events bind to the enclosing slice)"
                )
            key = (ev["name"], ev["id"])
            if ph == "s":
                if key in open_flows:
                    return fail(
                        f"{where}: flow {ev['name']!r} id {ev['id']} "
                        f"started twice"
                    )
                open_flows[key] = (ev["tid"], ev["ts"])
            else:
                if key not in open_flows:
                    return fail(
                        f"{where}: flow finish {ev['name']!r} id "
                        f"{ev['id']} without a matching start"
                    )
                start_tid, start_ts = open_flows.pop(key)
                if ev["ts"] < start_ts:
                    return fail(
                        f"{where}: flow {ev['name']!r} id {ev['id']} "
                        f"finishes before it starts"
                    )
                finished_flows += 1
                if ev["tid"] != start_tid:
                    cross_thread_flows += 1
        if ph in DURATION_PHASES:
            stack = open_spans.setdefault(ev["tid"], [])
            if ph == "B":
                stack.append((ev["name"], ev["ts"]))
                span_subsystems.add(ev["name"].split(".", 1)[0])
            else:
                if not stack:
                    return fail(f"{where}: E {ev['name']!r} with no open span")
                name, begin_ts = stack.pop()
                if name != ev["name"]:
                    return fail(
                        f"{where}: E {ev['name']!r} does not match "
                        f"innermost open span {name!r} (bad nesting)"
                    )
                if ev["ts"] < begin_ts:
                    return fail(f"{where}: span {name!r} ends before it begins")

    for tid, stack in open_spans.items():
        if stack:
            return fail(f"tid {tid}: {len(stack)} span(s) never closed: {stack}")

    if open_flows:
        dangling = sorted(open_flows)[:5]
        return fail(
            f"{len(open_flows)} flow(s) started but never finished, "
            f"e.g. {dangling}"
        )

    required = {s for s in opts.require.split(",") if s}
    missing = required - span_subsystems
    if missing:
        return fail(
            f"no spans from required subsystem(s) {sorted(missing)}; "
            f"saw {sorted(span_subsystems)}"
        )

    if opts.require_flows > 0 and cross_thread_flows < opts.require_flows:
        return fail(
            f"required {opts.require_flows} cross-thread flow(s), saw "
            f"{cross_thread_flows} (of {finished_flows} completed total)"
        )

    print(
        f"ok: {len(events)} events, {len(tid_to_name)} named thread(s), "
        f"balanced spans from {sorted(span_subsystems)}, "
        f"{finished_flows} flow(s) ({cross_thread_flows} cross-thread)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
