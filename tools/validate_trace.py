#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file written by src/obs/trace.cc.

Checks, in order:
  1. the file is valid JSON with the {"traceEvents": [...]} shape;
  2. every event carries the required fields for its phase;
  3. B/E duration events nest and balance per thread (LIFO discipline);
  4. "M" thread_name metadata events carry a string args.name, no tid is
     named twice, and no track name is bound to two tids (a duplicate
     binding means the tid registry handed out colliding ids — the bug the
     sequential registry replaced hashed ids to fix);
  5. (optional) spans cover the subsystems named with --require, given as
     name prefixes before the first '.' (e.g. "csp,consistency,db").

Exit status 0 on success, 1 with a diagnostic on the first violation.

Usage: validate_trace.py trace.json [--require csp,consistency,db,datalog]
"""

import argparse
import json
import sys

DURATION_PHASES = {"B", "E"}
KNOWN_PHASES = DURATION_PHASES | {"i", "C", "M"}


def fail(msg: str) -> int:
    sys.stderr.write(f"validate_trace: {msg}\n")
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace_path")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated subsystem prefixes that must emit spans",
    )
    opts = parser.parse_args()

    try:
        with open(opts.trace_path) as f:
            trace = json.load(f)
    except OSError as e:
        return fail(f"cannot read {opts.trace_path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return fail(f"{opts.trace_path} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return fail("top level must be an object with a traceEvents array")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return fail("traceEvents must be an array")

    # Per-thread stacks of open B spans; E must match the innermost one.
    open_spans: dict = {}
    span_subsystems = set()
    tid_to_name: dict = {}  # thread_name metadata: tid -> track name
    name_to_tid: dict = {}  # ...and the reverse binding
    for i, ev in enumerate(events):
        where = f"event {i}"
        if not isinstance(ev, dict):
            return fail(f"{where}: not an object")
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in ev:
                return fail(f"{where}: missing field {field!r}")
        if not isinstance(ev["name"], str) or not ev["name"]:
            return fail(f"{where}: name must be a nonempty string")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            return fail(f"{where}: ts must be a nonnegative number")
        ph = ev["ph"]
        if ph not in KNOWN_PHASES:
            return fail(f"{where}: unknown phase {ph!r}")
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            return fail(f"{where}: instant event needs scope s in t/p/g")
        if ph == "C" and not isinstance(
            ev.get("args", {}).get("value"), (int, float)
        ):
            return fail(f"{where}: counter event needs numeric args.value")
        if ph == "M":
            if ev["name"] != "thread_name":
                return fail(
                    f"{where}: unsupported metadata event {ev['name']!r}"
                )
            track = ev.get("args", {}).get("name")
            if not isinstance(track, str) or not track:
                return fail(
                    f"{where}: thread_name needs a nonempty string args.name"
                )
            tid = ev["tid"]
            if tid in tid_to_name and tid_to_name[tid] != track:
                return fail(
                    f"{where}: tid {tid} bound to both "
                    f"{tid_to_name[tid]!r} and {track!r}"
                )
            if track in name_to_tid and name_to_tid[track] != tid:
                return fail(
                    f"{where}: track name {track!r} bound to both tid "
                    f"{name_to_tid[track]} and tid {tid} (colliding ids)"
                )
            tid_to_name[tid] = track
            name_to_tid[track] = tid
        if ph in DURATION_PHASES:
            stack = open_spans.setdefault(ev["tid"], [])
            if ph == "B":
                stack.append((ev["name"], ev["ts"]))
                span_subsystems.add(ev["name"].split(".", 1)[0])
            else:
                if not stack:
                    return fail(f"{where}: E {ev['name']!r} with no open span")
                name, begin_ts = stack.pop()
                if name != ev["name"]:
                    return fail(
                        f"{where}: E {ev['name']!r} does not match "
                        f"innermost open span {name!r} (bad nesting)"
                    )
                if ev["ts"] < begin_ts:
                    return fail(f"{where}: span {name!r} ends before it begins")

    for tid, stack in open_spans.items():
        if stack:
            return fail(f"tid {tid}: {len(stack)} span(s) never closed: {stack}")

    required = {s for s in opts.require.split(",") if s}
    missing = required - span_subsystems
    if missing:
        return fail(
            f"no spans from required subsystem(s) {sorted(missing)}; "
            f"saw {sorted(span_subsystems)}"
        )

    print(
        f"ok: {len(events)} events, {len(tid_to_name)} named thread(s), "
        f"balanced spans from {sorted(span_subsystems)}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
