#!/usr/bin/env python3
"""Project lint suite for cspdb.

Mechanically enforces conventions the compiler cannot:

  raw-sync        std::mutex / std::shared_mutex / std::condition_variable
                  and their lock adapters (lock_guard, unique_lock,
                  scoped_lock, shared_lock) plus the <mutex>,
                  <shared_mutex>, <condition_variable> includes are banned
                  everywhere except src/util/sync.h. Raw primitives are
                  invisible to Clang's -Wthread-safety analysis; the
                  annotated wrappers are not.

  obs-macro-in-header
                  CSPDB_COUNT / CSPDB_TIMER_SCOPE / CSPDB_TRACE_* /
                  CSPDB_GAUGE_* must not appear in headers outside
                  src/obs/. Headers are included into arbitrary TUs, so a
                  header-side macro instruments every includer whether or
                  not that TU opted into the obs tier.

  obs-macro-tier  Layering: src/util/ must not use obs macros at all
                  (obs depends on util, never the reverse), and any .cc
                  file using an obs macro must include "obs/obs.h"
                  directly rather than picking the tier up transitively.

  metric-name-literal
                  The name argument of every metric/trace macro
                  (CSPDB_COUNT*, CSPDB_GAUGE_*, CSPDB_TIMER_SCOPE,
                  CSPDB_HISTO_*, CSPDB_TRACE_*) must be a single string
                  literal at the call site -- never a variable,
                  concatenation, or formatted string. Dynamic names
                  defeat the per-site `static` registry-handle cache
                  (the first name wins, later names are silently
                  recorded under it), make the metric namespace
                  unenumerable by grep, and can grow the registry
                  without bound.

  raw-simd        Vendor SIMD intrinsic headers (<immintrin.h>,
                  <x86intrin.h>, <arm_neon.h>) and __builtin_ia32_*
                  builtins are banned everywhere except src/util/simd.h.
                  Kernels express vector work through the simd::
                  primitives so one backend switch (and one differential
                  oracle) covers every hot loop; a stray intrinsic
                  elsewhere silently breaks the scalar/NEON builds.

  raw-socket      Socket/epoll system headers (<sys/socket.h>,
                  <sys/epoll.h>, <sys/eventfd.h>, <netinet/*.h>,
                  <arpa/inet.h>, <netdb.h>, <poll.h>) and the
                  epoll_*/eventfd syscalls are banned everywhere except
                  src/net/. All networking goes through the net:: tier
                  (wire framing, event loop, client) so the strict
                  decoder and backpressure rules cannot be bypassed by
                  an ad-hoc socket elsewhere in the tree.

  wallclock       time.time / datetime.now / date.today / utcnow /
                  perf_counter are banned in bench/*.py and tools/*.py.
                  Benchmark distillers must be replayable: deriving
                  output from "now" makes two runs over the same input
                  disagree.

Escapes: append a marker comment on the offending line or the line
directly above it, with a reason --

  C++:    // cspdb-lint: allow(raw-sync) -- <why>
  Python: # cspdb-lint: allow(wallclock) -- <why>

Usage:
  tools/lint_cspdb.py [paths...]   lint the tree (default: repo root)
  tools/lint_cspdb.py --self-test  run the linter against embedded
                                   violation fixtures; exits nonzero if
                                   any rule fails to fire.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

ALLOW_RE = re.compile(r"(?://|#)\s*cspdb-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

CPP_EXTS = (".h", ".cc")
SKIP_DIRS = {".git", "build", "third_party", "__pycache__"}

RAW_SYNC_RE = re.compile(
    r"std::(mutex|shared_mutex|condition_variable(?:_any)?|timed_mutex|"
    r"recursive_mutex|lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)

OBS_MACRO_RE = re.compile(
    r"\bCSPDB_(COUNT(?:_N)?|TIMER_SCOPE|HISTO_(?:NS|SCOPE)|"
    r"TRACE_(?:SPAN|INSTANT|COUNTER|FLOW_BEGIN|FLOW_END)|"
    r"GAUGE_(?:SET|MAX))\b"
)

# Metric/trace macros whose first argument is a metric or span name.
METRIC_NAME_MACRO_RE = re.compile(
    r"\bCSPDB_(?:COUNT(?:_N)?|TIMER_SCOPE|HISTO_(?:NS|SCOPE)|"
    r"TRACE_(?:SPAN|INSTANT|COUNTER|FLOW_BEGIN|FLOW_END)|"
    r"GAUGE_(?:SET|MAX))\s*\("
)

# A single plain string literal: dotted lowercase-ish identifier path.
METRIC_NAME_LITERAL_RE = re.compile(r'^\s*"[A-Za-z0-9_.]+"\s*$')

RAW_SIMD_RE = re.compile(
    r"#\s*include\s*<(immintrin|x86intrin|arm_neon|emmintrin|smmintrin|"
    r"tmmintrin|avxintrin|avx2intrin)\.h>"
    r"|\b__builtin_ia32_\w+"
)

RAW_SOCKET_RE = re.compile(
    r"#\s*include\s*<(sys/socket|sys/epoll|sys/eventfd|netinet/[a-z0-9_]+|"
    r"arpa/inet|netdb|poll)\.h>"
    r"|\bepoll_(create1?|ctl|wait)\s*\(|\beventfd\s*\("
)

WALLCLOCK_RE = re.compile(
    r"\btime\.time\s*\(|\bdatetime\.now\s*\(|\bdate\.today\s*\(|"
    r"\butcnow\s*\(|\bperf_counter\s*\(|\bmonotonic\s*\("
)


class Finding:
    def __init__(self, rule, path, lineno, line):
        self.rule = rule
        self.path = path
        self.lineno = lineno
        self.line = line.strip()

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return f"{rel}:{self.lineno}: [{self.rule}] {self.line}"


def allowed(rule, lines, idx):
    """True if line idx (0-based) or the line above carries an allow marker
    naming `rule`."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if m and rule in [r.strip() for r in m.group(1).split(",")]:
            return True
    return False


def is_comment_only(line):
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def first_macro_arg(lines, row, col, max_lines=6):
    """Return the text of the first macro argument, starting just after the
    open paren at lines[row][col:]. Scans across up to `max_lines` physical
    lines (call sites wrap), tracking nested parens and string quoting.
    Returns None if no depth-0 `,` or `)` terminator is found in range."""
    arg = []
    text = lines[row][col:]
    depth = 0
    in_str = False
    for _ in range(max_lines):
        k = 0
        while k < len(text):
            c = text[k]
            if in_str:
                if c == "\\":
                    arg.append(c)
                    k += 1
                    if k < len(text):
                        arg.append(text[k])
                        k += 1
                    continue
                if c == '"':
                    in_str = False
            elif c == '"':
                in_str = True
            elif c == "(":
                depth += 1
            elif c == ")":
                if depth == 0:
                    return "".join(arg)
                depth -= 1
            elif c == "," and depth == 0:
                return "".join(arg)
            arg.append(c)
            k += 1
        row += 1
        if row >= len(lines):
            return None
        arg.append(" ")
        text = lines[row]
    return None


def lint_cpp(path, rel, lines):
    findings = []
    norm = rel.replace(os.sep, "/")
    is_header = norm.endswith(".h")
    in_sync_h = norm == "src/util/sync.h"
    in_simd_h = norm == "src/util/simd.h"
    in_obs = norm.startswith("src/obs/")
    in_util = norm.startswith("src/util/")
    in_net = norm.startswith("src/net/")

    uses_obs_macro = False
    includes_obs_h = False

    for i, line in enumerate(lines):
        lineno = i + 1
        if '#include "obs/obs.h"' in line:
            includes_obs_h = True

        if not in_sync_h and RAW_SYNC_RE.search(line):
            if not is_comment_only(line) and not allowed("raw-sync", lines, i):
                findings.append(Finding("raw-sync", path, lineno, line))

        if not in_simd_h and RAW_SIMD_RE.search(line):
            if not is_comment_only(line) and not allowed("raw-simd", lines, i):
                findings.append(Finding("raw-simd", path, lineno, line))

        if not in_net and RAW_SOCKET_RE.search(line):
            if not is_comment_only(line) and not allowed(
                "raw-socket", lines, i
            ):
                findings.append(Finding("raw-socket", path, lineno, line))

        m = OBS_MACRO_RE.search(line)
        if m and not is_comment_only(line) and "#define" not in line:
            uses_obs_macro = True
            if is_header and not in_obs and not allowed(
                "obs-macro-in-header", lines, i
            ):
                findings.append(Finding("obs-macro-in-header", path, lineno, line))
            if in_util and not allowed("obs-macro-tier", lines, i):
                findings.append(Finding("obs-macro-tier", path, lineno, line))

        # Metric/span names must be literal at the call site. src/obs/ is
        # exempt: it hosts the macro machinery and name-agnostic plumbing.
        if not in_obs and not is_comment_only(line) and "#define" not in line:
            for call in METRIC_NAME_MACRO_RE.finditer(line):
                arg = first_macro_arg(lines, i, call.end())
                if (arg is None or not METRIC_NAME_LITERAL_RE.match(arg)) and (
                    not allowed("metric-name-literal", lines, i)
                ):
                    findings.append(
                        Finding("metric-name-literal", path, lineno, line)
                    )

    if (
        uses_obs_macro
        and not is_header
        and not in_obs
        and not includes_obs_h
        and not allowed("obs-macro-tier", lines, 0)
    ):
        findings.append(
            Finding(
                "obs-macro-tier",
                path,
                1,
                'uses CSPDB obs macros without #include "obs/obs.h"',
            )
        )
    return findings


def lint_python(path, rel, lines):
    findings = []
    for i, line in enumerate(lines):
        m = WALLCLOCK_RE.search(line)
        if m and not line.lstrip().startswith("#"):
            if not allowed("wallclock", lines, i):
                findings.append(Finding("wallclock", path, i + 1, line))
    return findings


def lint_file(path):
    rel = os.path.relpath(path, REPO_ROOT)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        sys.stderr.write(f"error: cannot read {path}: {e}\n")
        return []
    if path.endswith(CPP_EXTS):
        return lint_cpp(path, rel, lines)
    norm = rel.replace(os.sep, "/")
    if path.endswith(".py") and (
        norm.startswith("bench/") or norm.startswith("tools/")
    ):
        return lint_python(path, rel, lines)
    return []


def walk(paths):
    for root in paths:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in sorted(filenames):
                if name.endswith(CPP_EXTS) or name.endswith(".py"):
                    yield os.path.join(dirpath, name)


# --- self-test fixtures ------------------------------------------------------
# Each entry: (rule expected to fire, pseudo-path relative to the repo root,
# file body). The self-test feeds these through the same lint_* functions the
# real walk uses and fails if any expected rule stays silent, or if the
# allow-marker variants produce findings.

SELF_TEST_VIOLATIONS = [
    (
        "raw-sync",
        "src/service/bad_sync.cc",
        "#include <mutex>\nstd::mutex mu;\n",
    ),
    (
        "raw-sync",
        "tests/bad_lock_test.cc",
        "void f() { std::lock_guard<std::mutex> l(m); }\n",
    ),
    (
        "obs-macro-in-header",
        "src/db/bad_header.h",
        "inline void f() { CSPDB_COUNT(db.bad); }\n",
    ),
    (
        "obs-macro-tier",
        "src/util/bad_layering.cc",
        '#include "obs/obs.h"\nvoid f() { CSPDB_TIMER_SCOPE(util.bad); }\n',
    ),
    (
        "obs-macro-tier",
        "src/db/bad_include.cc",
        "void f() { CSPDB_TRACE_SPAN(db.bad); }\n",
    ),
    (
        "raw-simd",
        "src/csp/bad_intrinsics.cc",
        "#include <immintrin.h>\n",
    ),
    (
        "raw-simd",
        "src/db/bad_neon.h",
        "#include <arm_neon.h>\n",
    ),
    (
        "raw-simd",
        "src/db/bad_builtin.cc",
        "int f(long long* p) { return __builtin_ia32_ptestz256(p, p); }\n",
    ),
    (
        "metric-name-literal",
        "src/db/bad_metric_var.cc",
        '#include "obs/obs.h"\n'
        "void f(const char* n) { CSPDB_COUNT(n); }\n",
    ),
    (
        "metric-name-literal",
        "src/db/bad_metric_concat.cc",
        '#include "obs/obs.h"\n'
        "void f(const std::string& suffix, long v) {\n"
        '  CSPDB_HISTO_NS(("db." + suffix).c_str(), v);\n'
        "}\n",
    ),
    (
        "metric-name-literal",
        "src/db/bad_metric_format.cc",
        '#include "obs/obs.h"\n'
        "void f(int shard) {\n"
        "  CSPDB_TIMER_SCOPE(MakeName(\"db.shard\", shard));\n"
        "}\n",
    ),
    (
        "raw-socket",
        "src/service/bad_socket.cc",
        "#include <sys/socket.h>\n",
    ),
    (
        "raw-socket",
        "src/db/bad_epoll.cc",
        "int f() { return epoll_create1(0); }\n",
    ),
    (
        "raw-socket",
        "tests/bad_poll_test.cc",
        "#include <poll.h>\n",
    ),
    (
        "wallclock",
        "bench/bad_distill.py",
        # cspdb-lint: allow(wallclock) -- self-test fixture, string literal
        "import time\nstamp = time.time()\n",
    ),
]

SELF_TEST_CLEAN = [
    (
        "raw-sync allow marker",
        "src/service/escaped.cc",
        "// cspdb-lint: allow(raw-sync) -- interop with external API\n"
        "std::mutex mu;\n",
    ),
    (
        "wallclock allow marker",
        "bench/escaped.py",
        "# cspdb-lint: allow(wallclock) -- provenance stamp\n"
        "stamp = time.time()\n",
    ),
    (
        "obs macro in cc with include",
        "src/db/good.cc",
        '#include "obs/obs.h"\nvoid f() { CSPDB_COUNT("db.good"); }\n',
    ),
    (
        "literal metric name wrapped across lines",
        "src/db/good_wrapped.cc",
        '#include "obs/obs.h"\n'
        "void f(long v) {\n"
        "  CSPDB_GAUGE_SET(\n"
        '      "db.wrapped.bytes", v + 1);\n'
        "}\n",
    ),
    (
        "metric-name-literal allow marker",
        "src/db/escaped_metric.cc",
        '#include "obs/obs.h"\n'
        "// cspdb-lint: allow(metric-name-literal) -- bounded test-only names\n"
        "void f(const char* n) { CSPDB_COUNT(n); }\n",
    ),
    (
        "raw-simd sanctioned in simd.h",
        "src/util/simd.h",
        "#include <immintrin.h>\n#include <arm_neon.h>\n",
    ),
    (
        "raw-simd allow marker",
        "src/db/escaped_simd.cc",
        "// cspdb-lint: allow(raw-simd) -- vetted one-off kernel\n"
        "#include <immintrin.h>\n",
    ),
    (
        "raw-socket sanctioned in src/net/",
        "src/net/event_loop.cc",
        "#include <sys/epoll.h>\n#include <sys/eventfd.h>\n"
        "int f() { return epoll_create1(0); }\n",
    ),
    (
        "raw-socket allow marker",
        "src/db/escaped_socket.cc",
        "// cspdb-lint: allow(raw-socket) -- vetted one-off probe\n"
        "#include <sys/socket.h>\n",
    ),
]


def run_self_test():
    failures = 0
    for rule, rel, body in SELF_TEST_VIOLATIONS:
        path = os.path.join(REPO_ROOT, rel)
        lines = body.splitlines()
        if path.endswith(CPP_EXTS):
            findings = lint_cpp(path, rel, lines)
        else:
            findings = lint_python(path, rel, lines)
        if not any(f.rule == rule for f in findings):
            sys.stderr.write(f"self-test FAIL: {rule} did not fire on {rel}\n")
            failures += 1
    for label, rel, body in SELF_TEST_CLEAN:
        path = os.path.join(REPO_ROOT, rel)
        lines = body.splitlines()
        if path.endswith(CPP_EXTS):
            findings = lint_cpp(path, rel, lines)
        else:
            findings = lint_python(path, rel, lines)
        if findings:
            sys.stderr.write(
                f"self-test FAIL: false positive on '{label}' ({rel}): "
                f"{findings[0]}\n"
            )
            failures += 1
    if failures:
        return 1
    total = len(SELF_TEST_VIOLATIONS) + len(SELF_TEST_CLEAN)
    print(f"lint_cspdb self-test: {total} fixtures OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule fires on embedded violation fixtures",
    )
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    paths = args.paths or [
        os.path.join(REPO_ROOT, d)
        for d in ("src", "tests", "bench", "tools", "examples")
        if os.path.isdir(os.path.join(REPO_ROOT, d))
    ]
    findings = []
    for path in walk(paths):
        findings.extend(lint_file(path))

    for f in findings:
        print(f)
    if findings:
        print(f"lint_cspdb: {len(findings)} finding(s)")
        return 1
    print("lint_cspdb: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
