#!/usr/bin/env python3
"""Validates a metrics snapshot JSON written by MetricsRegistry::SnapshotJson
(e.g. cspdb_serve --metrics-out=metrics.json).

Checks, in order:
  1. the file is valid JSON with the counters/gauges/timers/histograms
     object shape, integer counter/gauge values, and non-negative timer
     count/total_ns;
  2. every histogram's buckets are [lo, hi, count] triples with lo < hi,
     count > 0 (the snapshot is sparse), and strictly increasing,
     non-overlapping bounds (each lo >= the previous hi);
  3. the histogram's count equals the sum of its bucket counts, and sum
     >= count * min (values can't total less than count copies of the
     minimum);
  4. min <= p50 <= p90 <= p99 <= p999 <= max, and every quantile lies
     inside some bucket's [lo, hi) — or equals min/max exactly, since
     ValueAtQuantile clamps representatives into the observed range;
  5. (optional) --require-histograms: comma-separated names that must be
     present with count > 0.

Exit status 0 on success, 1 with a diagnostic on the first violation.

Usage: validate_metrics.py metrics.json
           [--require-histograms service.handle_ns,service.engine_ns]
"""

import argparse
import json
import sys

QUANTILES = ("p50", "p90", "p99", "p999")


def fail(msg: str) -> int:
    sys.stderr.write(f"validate_metrics: {msg}\n")
    return 1


def check_histogram(name: str, h) -> str:
    """Returns an error message, or "" if the histogram is well-formed."""
    if not isinstance(h, dict):
        return f"histogram {name!r}: not an object"
    for field in ("count", "sum", "min", "max", "buckets") + QUANTILES:
        if field not in h:
            return f"histogram {name!r}: missing field {field!r}"
    for field in ("count", "sum", "min", "max") + QUANTILES:
        if not isinstance(h[field], int):
            return f"histogram {name!r}: {field} must be an integer"
    buckets = h["buckets"]
    if not isinstance(buckets, list):
        return f"histogram {name!r}: buckets must be an array"

    if h["count"] == 0:
        if buckets:
            return f"histogram {name!r}: empty histogram with buckets"
        return ""

    total = 0
    prev_hi = None
    for i, b in enumerate(buckets):
        if (
            not isinstance(b, list)
            or len(b) != 3
            or not all(isinstance(x, int) for x in b)
        ):
            return (
                f"histogram {name!r}: bucket {i} must be an integer "
                f"[lo, hi, count] triple, got {b!r}"
            )
        lo, hi, count = b
        if lo >= hi:
            return f"histogram {name!r}: bucket {i} has lo {lo} >= hi {hi}"
        if count <= 0:
            return (
                f"histogram {name!r}: bucket {i} has count {count} "
                f"(sparse snapshots omit empty buckets)"
            )
        if prev_hi is not None and lo < prev_hi:
            return (
                f"histogram {name!r}: bucket {i} lo {lo} overlaps previous "
                f"bucket ending at {prev_hi} (bounds must be monotone)"
            )
        prev_hi = hi
        total += count
    if total != h["count"]:
        return (
            f"histogram {name!r}: count {h['count']} != sum of bucket "
            f"counts {total}"
        )
    if h["min"] > h["max"]:
        return f"histogram {name!r}: min {h['min']} > max {h['max']}"
    if h["sum"] < h["count"] * h["min"] or h["sum"] > h["count"] * h["max"]:
        return (
            f"histogram {name!r}: sum {h['sum']} outside "
            f"[count*min, count*max]"
        )

    prev = h["min"]
    for q in QUANTILES:
        v = h[q]
        if v < prev:
            return (
                f"histogram {name!r}: {q} {v} < preceding quantile/min "
                f"{prev} (quantiles must be monotone)"
            )
        if v > h["max"]:
            return f"histogram {name!r}: {q} {v} > max {h['max']}"
        in_bucket = any(lo <= v < hi for lo, hi, _ in buckets)
        if not in_bucket and v not in (h["min"], h["max"]):
            return (
                f"histogram {name!r}: {q} {v} lies in no occupied bucket "
                f"and is neither min nor max"
            )
        prev = v
    return ""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("metrics_path")
    parser.add_argument(
        "--require-histograms",
        default="",
        help="comma-separated histogram names that must be present "
        "with count > 0",
    )
    opts = parser.parse_args()

    try:
        with open(opts.metrics_path) as f:
            snapshot = json.load(f)
    except OSError as e:
        return fail(f"cannot read {opts.metrics_path}: {e.strerror}")
    except json.JSONDecodeError as e:
        return fail(f"{opts.metrics_path} is not valid JSON: {e}")

    if not isinstance(snapshot, dict):
        return fail("top level must be an object")
    for section in ("counters", "gauges", "timers", "histograms"):
        if section not in snapshot or not isinstance(snapshot[section], dict):
            return fail(f"missing or non-object section {section!r}")

    for section in ("counters", "gauges"):
        for name, value in snapshot[section].items():
            if not isinstance(value, int):
                return fail(f"{section[:-1]} {name!r}: non-integer value")

    for name, t in snapshot["timers"].items():
        if not isinstance(t, dict) or not all(
            isinstance(t.get(k), int) for k in ("count", "total_ns")
        ):
            return fail(f"timer {name!r}: needs integer count and total_ns")
        if t["count"] < 0 or t["total_ns"] < 0:
            return fail(f"timer {name!r}: negative count or total_ns")
        if t["count"] == 0 and t["total_ns"] != 0:
            return fail(f"timer {name!r}: zero count with nonzero total_ns")

    histograms = snapshot["histograms"]
    for name, h in histograms.items():
        err = check_histogram(name, h)
        if err:
            return fail(err)

    required = {s for s in opts.require_histograms.split(",") if s}
    for name in sorted(required):
        if name not in histograms:
            return fail(
                f"required histogram {name!r} missing; saw "
                f"{sorted(histograms)}"
            )
        if histograms[name]["count"] == 0:
            return fail(f"required histogram {name!r} has count 0")

    print(
        f"ok: {len(snapshot['counters'])} counter(s), "
        f"{len(snapshot['gauges'])} gauge(s), "
        f"{len(snapshot['timers'])} timer(s), "
        f"{len(histograms)} histogram(s) well-formed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
