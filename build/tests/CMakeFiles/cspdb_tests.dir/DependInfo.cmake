
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/acyclic_test.cc" "tests/CMakeFiles/cspdb_tests.dir/acyclic_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/acyclic_test.cc.o.d"
  "/root/repo/tests/algebra_laws_test.cc" "tests/CMakeFiles/cspdb_tests.dir/algebra_laws_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/algebra_laws_test.cc.o.d"
  "/root/repo/tests/boolean_test.cc" "tests/CMakeFiles/cspdb_tests.dir/boolean_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/boolean_test.cc.o.d"
  "/root/repo/tests/canonical_program_test.cc" "tests/CMakeFiles/cspdb_tests.dir/canonical_program_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/canonical_program_test.cc.o.d"
  "/root/repo/tests/checks_test.cc" "tests/CMakeFiles/cspdb_tests.dir/checks_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/checks_test.cc.o.d"
  "/root/repo/tests/consistency_more_test.cc" "tests/CMakeFiles/cspdb_tests.dir/consistency_more_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/consistency_more_test.cc.o.d"
  "/root/repo/tests/consistency_test.cc" "tests/CMakeFiles/cspdb_tests.dir/consistency_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/consistency_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/cspdb_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/counting_test.cc" "tests/CMakeFiles/cspdb_tests.dir/counting_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/counting_test.cc.o.d"
  "/root/repo/tests/csp_test.cc" "tests/CMakeFiles/cspdb_tests.dir/csp_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/csp_test.cc.o.d"
  "/root/repo/tests/datalog_extra_test.cc" "tests/CMakeFiles/cspdb_tests.dir/datalog_extra_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/datalog_extra_test.cc.o.d"
  "/root/repo/tests/datalog_test.cc" "tests/CMakeFiles/cspdb_tests.dir/datalog_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/datalog_test.cc.o.d"
  "/root/repo/tests/db_test.cc" "tests/CMakeFiles/cspdb_tests.dir/db_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/db_test.cc.o.d"
  "/root/repo/tests/encodings_test.cc" "tests/CMakeFiles/cspdb_tests.dir/encodings_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/encodings_test.cc.o.d"
  "/root/repo/tests/evaluate_differential_test.cc" "tests/CMakeFiles/cspdb_tests.dir/evaluate_differential_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/evaluate_differential_test.cc.o.d"
  "/root/repo/tests/games_test.cc" "tests/CMakeFiles/cspdb_tests.dir/games_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/games_test.cc.o.d"
  "/root/repo/tests/gen_test.cc" "tests/CMakeFiles/cspdb_tests.dir/gen_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/gen_test.cc.o.d"
  "/root/repo/tests/hypertree_test.cc" "tests/CMakeFiles/cspdb_tests.dir/hypertree_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/hypertree_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/cspdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/cspdb_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/logic_test.cc" "tests/CMakeFiles/cspdb_tests.dir/logic_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/logic_test.cc.o.d"
  "/root/repo/tests/microstructure_test.cc" "tests/CMakeFiles/cspdb_tests.dir/microstructure_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/microstructure_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/cspdb_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/cspdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/relational_test.cc" "tests/CMakeFiles/cspdb_tests.dir/relational_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/relational_test.cc.o.d"
  "/root/repo/tests/rewriting_property_test.cc" "tests/CMakeFiles/cspdb_tests.dir/rewriting_property_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/rewriting_property_test.cc.o.d"
  "/root/repo/tests/rpq_test.cc" "tests/CMakeFiles/cspdb_tests.dir/rpq_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/rpq_test.cc.o.d"
  "/root/repo/tests/sat_stp_test.cc" "tests/CMakeFiles/cspdb_tests.dir/sat_stp_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/sat_stp_test.cc.o.d"
  "/root/repo/tests/solver_extensions_test.cc" "tests/CMakeFiles/cspdb_tests.dir/solver_extensions_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/solver_extensions_test.cc.o.d"
  "/root/repo/tests/solver_test.cc" "tests/CMakeFiles/cspdb_tests.dir/solver_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/solver_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/cspdb_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/treewidth_more_test.cc" "tests/CMakeFiles/cspdb_tests.dir/treewidth_more_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/treewidth_more_test.cc.o.d"
  "/root/repo/tests/treewidth_test.cc" "tests/CMakeFiles/cspdb_tests.dir/treewidth_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/treewidth_test.cc.o.d"
  "/root/repo/tests/two_sided_game_test.cc" "tests/CMakeFiles/cspdb_tests.dir/two_sided_game_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/two_sided_game_test.cc.o.d"
  "/root/repo/tests/two_way_test.cc" "tests/CMakeFiles/cspdb_tests.dir/two_way_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/two_way_test.cc.o.d"
  "/root/repo/tests/unification_test.cc" "tests/CMakeFiles/cspdb_tests.dir/unification_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/unification_test.cc.o.d"
  "/root/repo/tests/views_more_test.cc" "tests/CMakeFiles/cspdb_tests.dir/views_more_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/views_more_test.cc.o.d"
  "/root/repo/tests/views_test.cc" "tests/CMakeFiles/cspdb_tests.dir/views_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/views_test.cc.o.d"
  "/root/repo/tests/widths_test.cc" "tests/CMakeFiles/cspdb_tests.dir/widths_test.cc.o" "gcc" "tests/CMakeFiles/cspdb_tests.dir/widths_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cspdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
