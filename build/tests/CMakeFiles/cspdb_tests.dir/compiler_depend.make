# Empty compiler generated dependencies file for cspdb_tests.
# This may be replaced when dependencies are built.
