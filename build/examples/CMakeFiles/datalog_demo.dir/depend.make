# Empty dependencies file for datalog_demo.
# This may be replaced when dependencies are built.
