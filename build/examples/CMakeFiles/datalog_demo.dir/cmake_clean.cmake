file(REMOVE_RECURSE
  "CMakeFiles/datalog_demo.dir/datalog_demo.cc.o"
  "CMakeFiles/datalog_demo.dir/datalog_demo.cc.o.d"
  "datalog_demo"
  "datalog_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
