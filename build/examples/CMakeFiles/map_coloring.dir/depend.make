# Empty dependencies file for map_coloring.
# This may be replaced when dependencies are built.
