file(REMOVE_RECURSE
  "CMakeFiles/map_coloring.dir/map_coloring.cc.o"
  "CMakeFiles/map_coloring.dir/map_coloring.cc.o.d"
  "map_coloring"
  "map_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
