# Empty compiler generated dependencies file for scheduling.
# This may be replaced when dependencies are built.
