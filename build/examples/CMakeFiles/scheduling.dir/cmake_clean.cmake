file(REMOVE_RECURSE
  "CMakeFiles/scheduling.dir/scheduling.cc.o"
  "CMakeFiles/scheduling.dir/scheduling.cc.o.d"
  "scheduling"
  "scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
