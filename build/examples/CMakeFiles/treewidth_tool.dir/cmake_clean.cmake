file(REMOVE_RECURSE
  "CMakeFiles/treewidth_tool.dir/treewidth_tool.cc.o"
  "CMakeFiles/treewidth_tool.dir/treewidth_tool.cc.o.d"
  "treewidth_tool"
  "treewidth_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewidth_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
