# Empty compiler generated dependencies file for treewidth_tool.
# This may be replaced when dependencies are built.
