file(REMOVE_RECURSE
  "CMakeFiles/line_labeling.dir/line_labeling.cc.o"
  "CMakeFiles/line_labeling.dir/line_labeling.cc.o.d"
  "line_labeling"
  "line_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
