# Empty compiler generated dependencies file for line_labeling.
# This may be replaced when dependencies are built.
