# Empty dependencies file for semistructured_views.
# This may be replaced when dependencies are built.
