file(REMOVE_RECURSE
  "CMakeFiles/semistructured_views.dir/semistructured_views.cc.o"
  "CMakeFiles/semistructured_views.dir/semistructured_views.cc.o.d"
  "semistructured_views"
  "semistructured_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semistructured_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
