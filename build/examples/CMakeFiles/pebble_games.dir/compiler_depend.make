# Empty compiler generated dependencies file for pebble_games.
# This may be replaced when dependencies are built.
