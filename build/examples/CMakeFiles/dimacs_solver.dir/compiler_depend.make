# Empty compiler generated dependencies file for dimacs_solver.
# This may be replaced when dependencies are built.
