file(REMOVE_RECURSE
  "CMakeFiles/dimacs_solver.dir/dimacs_solver.cc.o"
  "CMakeFiles/dimacs_solver.dir/dimacs_solver.cc.o.d"
  "dimacs_solver"
  "dimacs_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimacs_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
