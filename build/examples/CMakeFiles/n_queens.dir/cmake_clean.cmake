file(REMOVE_RECURSE
  "CMakeFiles/n_queens.dir/n_queens.cc.o"
  "CMakeFiles/n_queens.dir/n_queens.cc.o.d"
  "n_queens"
  "n_queens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/n_queens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
