file(REMOVE_RECURSE
  "CMakeFiles/sudoku.dir/sudoku.cc.o"
  "CMakeFiles/sudoku.dir/sudoku.cc.o.d"
  "sudoku"
  "sudoku.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudoku.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
