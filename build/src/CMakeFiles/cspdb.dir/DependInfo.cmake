
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boolean/affine_sat.cc" "src/CMakeFiles/cspdb.dir/boolean/affine_sat.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/affine_sat.cc.o.d"
  "/root/repo/src/boolean/cnf.cc" "src/CMakeFiles/cspdb.dir/boolean/cnf.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/cnf.cc.o.d"
  "/root/repo/src/boolean/dpll.cc" "src/CMakeFiles/cspdb.dir/boolean/dpll.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/dpll.cc.o.d"
  "/root/repo/src/boolean/hell_nesetril.cc" "src/CMakeFiles/cspdb.dir/boolean/hell_nesetril.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/hell_nesetril.cc.o.d"
  "/root/repo/src/boolean/horn_sat.cc" "src/CMakeFiles/cspdb.dir/boolean/horn_sat.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/horn_sat.cc.o.d"
  "/root/repo/src/boolean/schaefer.cc" "src/CMakeFiles/cspdb.dir/boolean/schaefer.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/schaefer.cc.o.d"
  "/root/repo/src/boolean/two_sat.cc" "src/CMakeFiles/cspdb.dir/boolean/two_sat.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/boolean/two_sat.cc.o.d"
  "/root/repo/src/consistency/arc_consistency.cc" "src/CMakeFiles/cspdb.dir/consistency/arc_consistency.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/consistency/arc_consistency.cc.o.d"
  "/root/repo/src/consistency/establish.cc" "src/CMakeFiles/cspdb.dir/consistency/establish.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/consistency/establish.cc.o.d"
  "/root/repo/src/consistency/local_consistency.cc" "src/CMakeFiles/cspdb.dir/consistency/local_consistency.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/consistency/local_consistency.cc.o.d"
  "/root/repo/src/consistency/path_consistency.cc" "src/CMakeFiles/cspdb.dir/consistency/path_consistency.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/consistency/path_consistency.cc.o.d"
  "/root/repo/src/csp/backjump_solver.cc" "src/CMakeFiles/cspdb.dir/csp/backjump_solver.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/backjump_solver.cc.o.d"
  "/root/repo/src/csp/convert.cc" "src/CMakeFiles/cspdb.dir/csp/convert.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/convert.cc.o.d"
  "/root/repo/src/csp/dual_encoding.cc" "src/CMakeFiles/cspdb.dir/csp/dual_encoding.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/dual_encoding.cc.o.d"
  "/root/repo/src/csp/instance.cc" "src/CMakeFiles/cspdb.dir/csp/instance.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/instance.cc.o.d"
  "/root/repo/src/csp/microstructure.cc" "src/CMakeFiles/cspdb.dir/csp/microstructure.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/microstructure.cc.o.d"
  "/root/repo/src/csp/sat_encoding.cc" "src/CMakeFiles/cspdb.dir/csp/sat_encoding.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/sat_encoding.cc.o.d"
  "/root/repo/src/csp/solver.cc" "src/CMakeFiles/cspdb.dir/csp/solver.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/csp/solver.cc.o.d"
  "/root/repo/src/datalog/canonical_program.cc" "src/CMakeFiles/cspdb.dir/datalog/canonical_program.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/datalog/canonical_program.cc.o.d"
  "/root/repo/src/datalog/eval.cc" "src/CMakeFiles/cspdb.dir/datalog/eval.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/datalog/eval.cc.o.d"
  "/root/repo/src/datalog/program.cc" "src/CMakeFiles/cspdb.dir/datalog/program.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/datalog/program.cc.o.d"
  "/root/repo/src/db/acyclic.cc" "src/CMakeFiles/cspdb.dir/db/acyclic.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/db/acyclic.cc.o.d"
  "/root/repo/src/db/algebra.cc" "src/CMakeFiles/cspdb.dir/db/algebra.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/db/algebra.cc.o.d"
  "/root/repo/src/db/conjunctive_query.cc" "src/CMakeFiles/cspdb.dir/db/conjunctive_query.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/db/conjunctive_query.cc.o.d"
  "/root/repo/src/db/containment.cc" "src/CMakeFiles/cspdb.dir/db/containment.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/db/containment.cc.o.d"
  "/root/repo/src/db/relation.cc" "src/CMakeFiles/cspdb.dir/db/relation.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/db/relation.cc.o.d"
  "/root/repo/src/games/pebble_game.cc" "src/CMakeFiles/cspdb.dir/games/pebble_game.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/games/pebble_game.cc.o.d"
  "/root/repo/src/games/two_sided_game.cc" "src/CMakeFiles/cspdb.dir/games/two_sided_game.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/games/two_sided_game.cc.o.d"
  "/root/repo/src/gen/generators.cc" "src/CMakeFiles/cspdb.dir/gen/generators.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/gen/generators.cc.o.d"
  "/root/repo/src/io/rule_parser.cc" "src/CMakeFiles/cspdb.dir/io/rule_parser.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/io/rule_parser.cc.o.d"
  "/root/repo/src/io/text_format.cc" "src/CMakeFiles/cspdb.dir/io/text_format.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/io/text_format.cc.o.d"
  "/root/repo/src/logic/bounded_formula.cc" "src/CMakeFiles/cspdb.dir/logic/bounded_formula.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/logic/bounded_formula.cc.o.d"
  "/root/repo/src/relational/core.cc" "src/CMakeFiles/cspdb.dir/relational/core.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/relational/core.cc.o.d"
  "/root/repo/src/relational/homomorphism.cc" "src/CMakeFiles/cspdb.dir/relational/homomorphism.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/relational/homomorphism.cc.o.d"
  "/root/repo/src/relational/structure.cc" "src/CMakeFiles/cspdb.dir/relational/structure.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/relational/structure.cc.o.d"
  "/root/repo/src/relational/structure_ops.cc" "src/CMakeFiles/cspdb.dir/relational/structure_ops.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/relational/structure_ops.cc.o.d"
  "/root/repo/src/relational/vocabulary.cc" "src/CMakeFiles/cspdb.dir/relational/vocabulary.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/relational/vocabulary.cc.o.d"
  "/root/repo/src/rpq/graphdb.cc" "src/CMakeFiles/cspdb.dir/rpq/graphdb.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/rpq/graphdb.cc.o.d"
  "/root/repo/src/rpq/nfa.cc" "src/CMakeFiles/cspdb.dir/rpq/nfa.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/rpq/nfa.cc.o.d"
  "/root/repo/src/rpq/regex.cc" "src/CMakeFiles/cspdb.dir/rpq/regex.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/rpq/regex.cc.o.d"
  "/root/repo/src/rpq/rpq_eval.cc" "src/CMakeFiles/cspdb.dir/rpq/rpq_eval.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/rpq/rpq_eval.cc.o.d"
  "/root/repo/src/rpq/two_way.cc" "src/CMakeFiles/cspdb.dir/rpq/two_way.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/rpq/two_way.cc.o.d"
  "/root/repo/src/temporal/stp.cc" "src/CMakeFiles/cspdb.dir/temporal/stp.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/temporal/stp.cc.o.d"
  "/root/repo/src/treewidth/bucket_elimination.cc" "src/CMakeFiles/cspdb.dir/treewidth/bucket_elimination.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/bucket_elimination.cc.o.d"
  "/root/repo/src/treewidth/counting.cc" "src/CMakeFiles/cspdb.dir/treewidth/counting.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/counting.cc.o.d"
  "/root/repo/src/treewidth/exact.cc" "src/CMakeFiles/cspdb.dir/treewidth/exact.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/exact.cc.o.d"
  "/root/repo/src/treewidth/gaifman.cc" "src/CMakeFiles/cspdb.dir/treewidth/gaifman.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/gaifman.cc.o.d"
  "/root/repo/src/treewidth/heuristics.cc" "src/CMakeFiles/cspdb.dir/treewidth/heuristics.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/heuristics.cc.o.d"
  "/root/repo/src/treewidth/hypertree.cc" "src/CMakeFiles/cspdb.dir/treewidth/hypertree.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/hypertree.cc.o.d"
  "/root/repo/src/treewidth/incidence.cc" "src/CMakeFiles/cspdb.dir/treewidth/incidence.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/incidence.cc.o.d"
  "/root/repo/src/treewidth/tree_decomposition.cc" "src/CMakeFiles/cspdb.dir/treewidth/tree_decomposition.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/treewidth/tree_decomposition.cc.o.d"
  "/root/repo/src/util/check.cc" "src/CMakeFiles/cspdb.dir/util/check.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/util/check.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/cspdb.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/util/rng.cc.o.d"
  "/root/repo/src/views/certain_answers.cc" "src/CMakeFiles/cspdb.dir/views/certain_answers.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/views/certain_answers.cc.o.d"
  "/root/repo/src/views/constraint_template.cc" "src/CMakeFiles/cspdb.dir/views/constraint_template.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/views/constraint_template.cc.o.d"
  "/root/repo/src/views/csp_to_views.cc" "src/CMakeFiles/cspdb.dir/views/csp_to_views.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/views/csp_to_views.cc.o.d"
  "/root/repo/src/views/rewriting.cc" "src/CMakeFiles/cspdb.dir/views/rewriting.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/views/rewriting.cc.o.d"
  "/root/repo/src/views/view.cc" "src/CMakeFiles/cspdb.dir/views/view.cc.o" "gcc" "src/CMakeFiles/cspdb.dir/views/view.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
