# Empty compiler generated dependencies file for cspdb.
# This may be replaced when dependencies are built.
