file(REMOVE_RECURSE
  "libcspdb.a"
)
