file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog_templates.dir/bench_datalog_templates.cc.o"
  "CMakeFiles/bench_datalog_templates.dir/bench_datalog_templates.cc.o.d"
  "bench_datalog_templates"
  "bench_datalog_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
