# Empty dependencies file for bench_datalog_templates.
# This may be replaced when dependencies are built.
