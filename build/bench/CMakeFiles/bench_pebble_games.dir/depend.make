# Empty dependencies file for bench_pebble_games.
# This may be replaced when dependencies are built.
