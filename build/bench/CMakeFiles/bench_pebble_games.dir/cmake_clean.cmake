file(REMOVE_RECURSE
  "CMakeFiles/bench_pebble_games.dir/bench_pebble_games.cc.o"
  "CMakeFiles/bench_pebble_games.dir/bench_pebble_games.cc.o.d"
  "bench_pebble_games"
  "bench_pebble_games.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pebble_games.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
