file(REMOVE_RECURSE
  "CMakeFiles/bench_treewidth.dir/bench_treewidth.cc.o"
  "CMakeFiles/bench_treewidth.dir/bench_treewidth.cc.o.d"
  "bench_treewidth"
  "bench_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
