# Empty compiler generated dependencies file for bench_treewidth.
# This may be replaced when dependencies are built.
