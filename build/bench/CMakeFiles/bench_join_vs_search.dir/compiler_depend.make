# Empty compiler generated dependencies file for bench_join_vs_search.
# This may be replaced when dependencies are built.
