file(REMOVE_RECURSE
  "CMakeFiles/bench_join_vs_search.dir/bench_join_vs_search.cc.o"
  "CMakeFiles/bench_join_vs_search.dir/bench_join_vs_search.cc.o.d"
  "bench_join_vs_search"
  "bench_join_vs_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_vs_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
