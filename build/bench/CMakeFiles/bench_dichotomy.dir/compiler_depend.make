# Empty compiler generated dependencies file for bench_dichotomy.
# This may be replaced when dependencies are built.
