# Empty dependencies file for bench_widths.
# This may be replaced when dependencies are built.
