file(REMOVE_RECURSE
  "CMakeFiles/bench_widths.dir/bench_widths.cc.o"
  "CMakeFiles/bench_widths.dir/bench_widths.cc.o.d"
  "bench_widths"
  "bench_widths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_widths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
