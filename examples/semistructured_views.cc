// Section 7 end to end: a semistructured "citation graph" accessible only
// through two views. Computes certain answers via the Theorem 7.5
// constraint template, the maximal RPQ rewriting, and contrasts the two.

#include <cstdio>

#include "rpq/rpq_eval.h"
#include "views/certain_answers.h"
#include "views/constraint_template.h"
#include "views/rewriting.h"

int main() {
  using namespace cspdb;

  // Base alphabet: c = "cites", s = "sameTopic".
  ViewSetting setting;
  setting.alphabet = {"c", "s"};
  // Views: V0 exposes citation chains of length two, V1 exposes topic
  // links.
  setting.views.push_back({"V0", ParseRegex("cc", setting.alphabet)});
  setting.views.push_back({"V1", ParseRegex("s", setting.alphabet)});
  // Query: an even-length citation chain followed by a topic link.
  setting.query = ParseRegex("(cc)*s", setting.alphabet);

  // Known view extensions over five papers.
  ViewInstance instance;
  instance.num_objects = 5;
  instance.ext.resize(2);
  instance.ext[0] = {{0, 1}, {1, 2}};  // V0: 0 =cc=> 1 =cc=> 2
  instance.ext[1] = {{2, 3}, {0, 4}};  // V1: topic links

  std::printf("Views: V0 = cc, V1 = s; query Q = (cc)*s\n\n");

  // The Theorem 7.5 template: domain = powerset of the query DFA.
  ConstraintTemplate tmpl = BuildConstraintTemplate(setting);
  std::printf("Constraint template B: %d query-DFA states, domain %d, "
              "%d tuples\n\n",
              tmpl.query_dfa.num_states, tmpl.b.domain_size(),
              tmpl.b.TotalTuples());

  std::printf("Certain answers (exact, via CSP reduction):\n");
  for (const auto& [x, y] : CertainAnswers(setting, instance)) {
    std::printf("  (%d, %d)\n", x, y);
  }

  std::printf("\nMaximal rewriting answers (sound approximation):\n");
  for (const auto& [x, y] : RewritingAnswers(setting, instance)) {
    std::printf("  (%d, %d)\n", x, y);
  }

  // Direct RPQ evaluation if we could see the base data: compare with a
  // database that is consistent with the views.
  GraphDb base(7, 2);
  base.AddEdge(0, 0, 5);  // 0 -c-> 5 -c-> 1: realizes V0 (0,1)
  base.AddEdge(5, 0, 1);
  base.AddEdge(1, 0, 6);  // realizes V0 (1,2)
  base.AddEdge(6, 0, 2);
  base.AddEdge(2, 1, 3);  // realizes V1 (2,3)
  base.AddEdge(0, 1, 4);  // realizes V1 (0,4)
  std::printf("\nOne consistent base database answers:\n");
  Nfa q = Nfa::FromRegex(setting.query, 2);
  for (const auto& [x, y] : EvaluateRpq(base, q)) {
    if (x < 5 && y < 5) std::printf("  (%d, %d)\n", x, y);
  }
  std::printf("(certain answers are those common to every such "
              "database)\n");
  return 0;
}
