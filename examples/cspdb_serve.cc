// cspdb_serve: the serving-tier driver. Three modes:
//
// 1. In-process replay (default): replay a generated request stream
//    through CspdbService and report serving statistics (hit rate,
//    coalescing, sheds, latency). The stream is seeded, so two runs with
//    the same flags see identical requests.
// 2. Server (--listen): serve the binary wire protocol (src/net/) until
//    SIGTERM/SIGINT or --serve-for-ms elapses, then drain gracefully and
//    print the serving summary. With --peers, the node joins a
//    consistent-hash cluster and consults fingerprint owners on local
//    misses.
// 3. Load generator (--connect): drive the same seeded stream over real
//    sockets against a running server, closed-loop over N connections,
//    and report latency quantiles. With --verify-local every response is
//    checked byte-identical against a local single-node computation (the
//    differential contract CI gates on).
//
// With CSPDB_TRACE=out.json any mode emits a Chrome trace; in server
// mode the "net.request"/"service.request" flow events stitch the
// event-loop dispatch to the worker-pool handling.
//
//   cspdb_serve [flags] [num_requests] [pool_size] [zipf_s]
//               [mutation_prob] [timeout_ms]
//
// Flag-parse failures print usage and exit nonzero (CI smoke jobs must
// not silently run a misconfigured replay).
//
// The final "cache_hits=N ..." (and, in server mode, "remote_hits=N
// ...", in client mode "mismatches=N ...") lines are machine-greppable;
// CI asserts on them.

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "net/shard.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/server.h"
#include "service/workload.h"

namespace {

struct Flags {
  std::string metrics_out;
  std::string stats_out;
  std::string listen;
  std::string peers;
  std::string connect;
  bool verify_local = false;
  int64_t serve_for_ms = 0;  // 0 = until SIGTERM/SIGINT
  int connections = 2;

  int num_requests = 400;
  int pool_size = 12;
  double zipf_s = 1.1;
  double mutation_prob = 0.05;
  int64_t timeout_ms = 2000;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: cspdb_serve [flags] [num_requests] [pool_size] [zipf_s]\n"
      "                   [mutation_prob] [timeout_ms]\n"
      "flags:\n"
      "  --metrics-out=PATH   write the metrics snapshot JSON\n"
      "  --stats-out=PATH     write the fingerprint stats-store dump JSON\n"
      "  --listen=HOST:PORT   serve the wire protocol (server mode)\n"
      "  --peers=H:P,H:P,...  cluster members; must include the --listen\n"
      "                       address verbatim (ring ids are the literal\n"
      "                       strings, so every node must use the same\n"
      "                       spelling)\n"
      "  --serve-for-ms=N     server mode: drain and exit after N ms\n"
      "                       (default: run until SIGTERM/SIGINT)\n"
      "  --connect=HOST:PORT  replay the stream against a running server\n"
      "  --connections=N      client mode: concurrent connections "
      "(default 2)\n"
      "  --verify-local       client mode: check every response is\n"
      "                       byte-identical to a local computation\n"
      "  --help               this text\n");
}

bool ParseInt64(const char* s, int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseInt(const char* s, int* out) {
  int64_t v = 0;
  if (!ParseInt64(s, &v) || v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const char* s, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  *out = v;
  return true;
}

/// Parses argv into *flags. Returns false (after printing a diagnostic
/// and usage) on any unknown flag, malformed value, or bad positional —
/// the caller exits nonzero so CI can't run a misconfigured replay.
bool ParseFlags(int argc, char** argv, Flags* flags, bool* want_help) {
  *want_help = false;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    char* arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') return arg + n + 1;
      return nullptr;
    };
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0) {
      *want_help = true;
      return true;
    } else if ((v = value_of("--metrics-out")) != nullptr) {
      flags->metrics_out = v;
    } else if ((v = value_of("--stats-out")) != nullptr) {
      flags->stats_out = v;
    } else if ((v = value_of("--listen")) != nullptr) {
      flags->listen = v;
    } else if ((v = value_of("--peers")) != nullptr) {
      flags->peers = v;
    } else if ((v = value_of("--connect")) != nullptr) {
      flags->connect = v;
    } else if ((v = value_of("--serve-for-ms")) != nullptr) {
      if (!ParseInt64(v, &flags->serve_for_ms) || flags->serve_for_ms < 0) {
        std::fprintf(stderr, "cspdb_serve: bad --serve-for-ms value %s\n", v);
        return false;
      }
    } else if ((v = value_of("--connections")) != nullptr) {
      if (!ParseInt(v, &flags->connections) || flags->connections < 1) {
        std::fprintf(stderr, "cspdb_serve: bad --connections value %s\n", v);
        return false;
      }
    } else if (std::strcmp(arg, "--verify-local") == 0) {
      flags->verify_local = true;
    } else if (arg[0] == '-' && arg[1] == '-') {
      std::fprintf(stderr, "cspdb_serve: unknown flag %s\n", arg);
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 5) {
    std::fprintf(stderr, "cspdb_serve: too many positional arguments\n");
    return false;
  }
  bool ok = true;
  if (positional.size() > 0) ok &= ParseInt(positional[0], &flags->num_requests);
  if (positional.size() > 1) ok &= ParseInt(positional[1], &flags->pool_size);
  if (positional.size() > 2) ok &= ParseDouble(positional[2], &flags->zipf_s);
  if (positional.size() > 3) {
    ok &= ParseDouble(positional[3], &flags->mutation_prob);
  }
  if (positional.size() > 4) ok &= ParseInt64(positional[4], &flags->timeout_ms);
  if (!ok || flags->num_requests < 1 || flags->pool_size < 1 ||
      flags->timeout_ms < 1) {
    std::fprintf(stderr, "cspdb_serve: malformed positional arguments\n");
    return false;
  }
  if (!flags->listen.empty() && !flags->connect.empty()) {
    std::fprintf(stderr,
                 "cspdb_serve: --listen and --connect are exclusive\n");
    return false;
  }
  if (flags->verify_local && flags->connect.empty()) {
    std::fprintf(stderr, "cspdb_serve: --verify-local needs --connect\n");
    return false;
  }
  if (!flags->peers.empty() && flags->listen.empty()) {
    std::fprintf(stderr, "cspdb_serve: --peers needs --listen\n");
    return false;
  }
  return true;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

cspdb::service::WorkloadOptions WorkloadFrom(const Flags& flags) {
  cspdb::service::WorkloadOptions workload;
  workload.num_requests = flags.num_requests;
  workload.pool_size = flags.pool_size;
  workload.zipf_s = flags.zipf_s;
  workload.mutation_prob = flags.mutation_prob;
  workload.seed = 42;
  return workload;
}

// Refreshes the "service.load.*" gauges from the live service/pool while
// the replay runs, so the metrics snapshot reflects mid-run load, not
// just the quiesced end state. Plain std::thread + atomic flag: the
// sampler owns no shared state beyond the always-thread-safe gauge and
// stats accessors it calls.
class GaugeSampler {
 public:
  GaugeSampler(cspdb::service::CspdbService* server,
               cspdb::exec::ThreadPool* pool)
      : server_(server), pool_(pool), thread_([this] { Loop(); }) {}

  ~GaugeSampler() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      SampleOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    SampleOnce();  // final sample after the stream drained
  }

  void SampleOnce() {
    CSPDB_GAUGE_SET("service.load.queue_depth", pool_->queued());
    CSPDB_GAUGE_SET("service.load.in_flight", server_->pending());
    CSPDB_GAUGE_SET(
        "service.load.cache_bytes",
        static_cast<int64_t>(server_->cache().stats().bytes));
    CSPDB_GAUGE_MAX("service.load.peak_in_flight", server_->pending());
  }

  cspdb::service::CspdbService* server_;
  cspdb::exec::ThreadPool* pool_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

/// Writes --metrics-out / --stats-out if requested. Returns false on I/O
/// failure.
bool WriteArtifacts(const Flags& flags,
                    const cspdb::service::CspdbService& server) {
  namespace obs = cspdb::obs;
  if (!flags.metrics_out.empty()) {
    const std::string json = obs::MetricsRegistry::Global().SnapshotJson();
    if (!WriteTextFile(flags.metrics_out, json)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   flags.metrics_out.c_str());
      return false;
    }
    std::printf("metrics written to %s\n", flags.metrics_out.c_str());
  }
  if (!flags.stats_out.empty()) {
    if (!WriteTextFile(flags.stats_out, server.stats_store().DumpJson())) {
      std::fprintf(stderr, "failed to write stats store to %s\n",
                   flags.stats_out.c_str());
      return false;
    }
    std::printf("stats store written to %s\n", flags.stats_out.c_str());
  }
  return true;
}

void PrintServiceSummary(const cspdb::service::CspdbService& server) {
  const cspdb::service::ServiceStats stats = server.stats();
  std::printf("cache_hits=%lld coalesced=%lld engine_invocations=%lld "
              "shed=%lld rejected=%lld\n",
              (long long)stats.cache_hits, (long long)stats.coalesced,
              (long long)stats.engine_invocations,
              (long long)stats.shed_deadline, (long long)stats.rejected);
}

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

// --- server mode ------------------------------------------------------------

int RunServer(const Flags& flags) {
  using namespace cspdb;
  using namespace cspdb::service;

  ServiceOptions options;
  options.default_timeout_ns = flags.timeout_ms * 1'000'000;
  CspdbService service(options);

  std::vector<net::PeerId> members;
  std::unique_ptr<net::ShardRouter> router;
  if (!flags.peers.empty()) {
    bool self_listed = false;
    for (const std::string& peer : SplitCommas(flags.peers)) {
      members.push_back({peer});
      self_listed = self_listed || peer == flags.listen;
    }
    if (!self_listed) {
      std::fprintf(stderr,
                   "cspdb_serve: --peers must include the --listen address "
                   "%s verbatim\n",
                   flags.listen.c_str());
      return 2;
    }
    net::RouterOptions router_options;
    router_options.request_timeout_ns = flags.timeout_ms * 1'000'000;
    router = std::make_unique<net::ShardRouter>(&service, flags.listen,
                                                members, router_options);
  }

  net::ServerOptions server_options;
  server_options.listen_address = flags.listen;
  server_options.request_timeout_ns = flags.timeout_ms * 1'000'000;
  net::NetServer server(&service, server_options);
  if (router != nullptr) server.set_router(router.get());
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "cspdb_serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s (%s)\n", server.address().c_str(),
              router != nullptr ? "clustered" : "single-node");
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(flags.serve_for_ms);
  while (!g_stop.load(std::memory_order_relaxed)) {
    if (flags.serve_for_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();

  const net::ServerStats net_stats = server.stats();
  std::printf("\n--- serving summary (%s) ---\n", server.address().c_str());
  std::printf("connections:       %lld accepted, %lld closed\n",
              (long long)net_stats.connections_accepted,
              (long long)net_stats.connections_closed);
  std::printf("frames:            %lld in, %lld out (%lld protocol errors)\n",
              (long long)net_stats.frames_received,
              (long long)net_stats.frames_sent,
              (long long)net_stats.protocol_errors);
  std::printf("requests:          %lld\n",
              (long long)net_stats.requests_dispatched);
  if (router != nullptr) {
    const net::RouterStats rs = router->stats();
    std::printf("routing:           %lld local hits, %lld remote hits, "
                "%lld remote compute, %lld local compute, %lld peer "
                "failures\n",
                (long long)rs.local_hits, (long long)rs.remote_hits,
                (long long)rs.remote_compute, (long long)rs.local_compute,
                (long long)rs.peer_failures);
    // Machine-readable routing line (net-smoke greps remote_hits).
    std::printf("local_hits=%lld remote_hits=%lld remote_compute=%lld "
                "local_compute=%lld peer_failures=%lld protocol_errors=%lld\n",
                (long long)rs.local_hits, (long long)rs.remote_hits,
                (long long)rs.remote_compute, (long long)rs.local_compute,
                (long long)rs.peer_failures,
                (long long)net_stats.protocol_errors);
  }
  PrintServiceSummary(service);
  if (!WriteArtifacts(flags, service)) return 1;
  return 0;
}

// --- client (load generator) mode -------------------------------------------

int RunClient(const Flags& flags) {
  using namespace cspdb;
  using namespace cspdb::service;

  std::printf("generating %d requests (pool %d per kind, zipf s=%.2f, "
              "mutation %.2f)...\n",
              flags.num_requests, flags.pool_size, flags.zipf_s,
              flags.mutation_prob);
  const std::vector<ServiceRequest> stream =
      GenerateRequestStream(WorkloadFrom(flags));

  // The local reference for --verify-local: a fresh single-node service.
  // The determinism contract says its answers must be byte-identical to
  // whatever the cluster serves, no matter which node/cache/engine run
  // produced them.
  std::unique_ptr<CspdbService> reference;
  if (flags.verify_local) {
    ServiceOptions options;
    options.default_timeout_ns = -1;  // the reference never sheds
    reference = std::make_unique<CspdbService>(options);
  }

  struct WorkerResult {
    std::vector<int64_t> latencies_ns;
    int64_t ok = 0;
    int64_t errors = 0;
    int64_t mismatches = 0;
    int64_t remote = 0;
  };
  const int workers = flags.connections;
  std::vector<WorkerResult> results(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  std::atomic<std::size_t> next_index{0};
  const int64_t call_timeout_ms = flags.timeout_ms + 2000;

  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      WorkerResult& result = results[w];
      std::string error;
      std::unique_ptr<net::Connection> conn =
          net::Connection::Dial(flags.connect, 2000, &error);
      uint64_t request_id = 1;
      for (;;) {
        const std::size_t i = next_index.fetch_add(1);
        if (i >= stream.size()) break;
        if (conn == nullptr || conn->broken()) {
          conn = net::Connection::Dial(flags.connect, 2000, &error);
          if (conn == nullptr) {
            ++result.errors;
            continue;
          }
        }
        const auto start = std::chrono::steady_clock::now();
        std::optional<Response> response =
            conn->Call(stream[i], request_id++, 0, call_timeout_ms, &error);
        if (!response.has_value()) {
          ++result.errors;
          continue;
        }
        result.latencies_ns.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
        if (response->status == StatusCode::kOk) ++result.ok;
        if (response->served_remotely) ++result.remote;
        if (reference != nullptr) {
          const Response local = reference->Handle(stream[i]);
          if (net::AnswerBytes(*response) != net::AnswerBytes(local)) {
            ++result.mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<int64_t> latencies;
  int64_t ok = 0, errors = 0, mismatches = 0, remote = 0;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ns.begin(),
                     r.latencies_ns.end());
    ok += r.ok;
    errors += r.errors;
    mismatches += r.mismatches;
    remote += r.remote;
  }
  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) -> int64_t {
    if (latencies.empty()) return 0;
    std::size_t rank = static_cast<std::size_t>(q * latencies.size());
    if (rank >= latencies.size()) rank = latencies.size() - 1;
    return latencies[rank];
  };
  std::printf("\n--- replay summary (%s, %d connections) ---\n",
              flags.connect.c_str(), workers);
  std::printf("responses:         %zu (ok %lld, errors %lld)\n",
              latencies.size(), (long long)ok, (long long)errors);
  std::printf("served remotely:   %lld\n", (long long)remote);
  std::printf("latency:           p50 %.1f us, p99 %.1f us, p999 %.1f us\n",
              quantile(0.5) / 1e3, quantile(0.99) / 1e3,
              quantile(0.999) / 1e3);
  if (reference != nullptr) {
    std::printf("verified against local compute: %lld mismatches\n",
                (long long)mismatches);
  }
  // Machine-readable line (net-smoke gates mismatches=0, errors=0).
  std::printf("responses=%zu ok=%lld errors=%lld mismatches=%lld "
              "served_remotely=%lld\n",
              latencies.size(), (long long)ok, (long long)errors,
              (long long)mismatches, (long long)remote);
  return errors == 0 && mismatches == 0 ? 0 : 1;
}

// --- in-process replay mode (the original driver) ---------------------------

int RunLocalReplay(const Flags& flags) {
  using namespace cspdb;
  using namespace cspdb::service;

  std::printf("generating %d requests (pool %d per kind, zipf s=%.2f, "
              "mutation %.2f)...\n",
              flags.num_requests, flags.pool_size, flags.zipf_s,
              flags.mutation_prob);
  std::vector<ServiceRequest> stream =
      GenerateRequestStream(WorkloadFrom(flags));

  ServiceOptions options;
  options.default_timeout_ns = flags.timeout_ms * 1'000'000;
  CspdbService server(options);

  int64_t by_status[3] = {0, 0, 0};
  int64_t total_latency_ns = 0;
  int64_t max_latency_ns = 0;
  int64_t total_queue_wait_ns = 0;
  {
    GaugeSampler sampler(&server, &exec::ThreadPool::Global());

    std::vector<std::future<Response>> futures;
    futures.reserve(stream.size());
    for (ServiceRequest& request : stream) {
      futures.push_back(server.Submit(std::move(request)));
    }

    for (auto& f : futures) {
      Response r = f.get();
      ++by_status[static_cast<int>(r.status)];
      total_latency_ns += r.latency_ns;
      total_queue_wait_ns += r.queue_wait_ns;
      if (r.latency_ns > max_latency_ns) max_latency_ns = r.latency_ns;
    }
  }  // sampler takes its final quiesced sample here

  const ServiceStats stats = server.stats();
  const CacheStats cache = server.cache().stats();
  std::printf("\n--- serving summary ---\n");
  std::printf("requests:          %lld\n", (long long)stats.requests);
  std::printf("  ok:              %lld\n", (long long)by_status[0]);
  std::printf("  deadline_exceeded: %lld\n", (long long)by_status[1]);
  std::printf("  rejected:        %lld\n", (long long)by_status[2]);
  std::printf("cache hits:        %lld (misses %lld)\n",
              (long long)stats.cache_hits, (long long)stats.cache_misses);
  std::printf("coalesced:         %lld\n", (long long)stats.coalesced);
  std::printf("engine runs:       %lld\n",
              (long long)stats.engine_invocations);
  std::printf("cache bytes:       %lld / %lld (entries %lld, "
              "evictions %lld)\n",
              (long long)cache.bytes, (long long)server.cache().max_bytes(),
              (long long)cache.entries, (long long)cache.evictions);
  const int64_t handled = by_status[0] + by_status[1];
  std::printf("mean latency:      %.1f us (max %.1f us)\n",
              handled > 0 ? total_latency_ns / 1e3 / handled : 0.0,
              max_latency_ns / 1e3);
  std::printf("mean queue wait:   %.1f us\n",
              handled > 0 ? total_queue_wait_ns / 1e3 / handled : 0.0);
  std::printf("stats store keys:  %lld\n",
              (long long)server.stats_store().size());

  // Machine-readable line for CI (service-smoke greps cache_hits).
  PrintServiceSummary(server);

  if (!WriteArtifacts(flags, server)) return 1;

  // In observability builds the "service.*" metrics mirror these counts.
  if (obs::MetricsRegistry::Global().HasCounter("service.requests")) {
    std::printf("\nmetrics snapshot:\n%s\n",
                obs::MetricsRegistry::Global().SnapshotJson().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  bool want_help = false;
  if (!ParseFlags(argc, argv, &flags, &want_help)) {
    PrintUsage(stderr);
    return 2;
  }
  if (want_help) {
    PrintUsage(stdout);
    return 0;
  }
  if (!flags.listen.empty()) return RunServer(flags);
  if (!flags.connect.empty()) return RunClient(flags);
  return RunLocalReplay(flags);
}
