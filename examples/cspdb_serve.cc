// cspdb_serve: replay a generated request stream through CspdbService and
// report serving statistics (hit rate, coalescing, sheds, latency). The
// stream is seeded, so two runs with the same flags see identical
// requests. With CSPDB_TRACE=out.json the run emits a Chrome trace whose
// "service.*" spans show the cache/engine split per request, stitched
// into per-request lanes by "service.request" flow events.
//
//   cspdb_serve [--metrics-out=PATH] [--stats-out=PATH]
//               [num_requests] [pool_size] [zipf_s] [mutation_prob]
//               [timeout_ms]
//
//   --metrics-out=PATH  write the end-of-run metrics snapshot (counters,
//                       gauges, timers, histograms with p50/p90/p99/p999)
//                       as JSON; the shape tools/validate_metrics.py
//                       checks. While the replay runs, a sampler thread
//                       periodically refreshes the load gauges (pool
//                       queue depth, cache bytes, in-flight requests).
//   --stats-out=PATH    write the fingerprint-keyed runtime-stats store
//                       dump (per-fingerprint outcome history) as JSON.
//
// The final "cache_hits=N ..." line is machine-greppable (CI asserts a
// nonzero hit count on the default workload).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "service/server.h"
#include "service/workload.h"

namespace {

// Refreshes the "service.load.*" gauges from the live service/pool while
// the replay runs, so the metrics snapshot reflects mid-run load, not
// just the quiesced end state. Plain std::thread + atomic flag: the
// sampler owns no shared state beyond the always-thread-safe gauge and
// stats accessors it calls.
class GaugeSampler {
 public:
  GaugeSampler(cspdb::service::CspdbService* server,
               cspdb::exec::ThreadPool* pool)
      : server_(server), pool_(pool), thread_([this] { Loop(); }) {}

  ~GaugeSampler() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      SampleOnce();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    SampleOnce();  // final sample after the stream drained
  }

  void SampleOnce() {
    CSPDB_GAUGE_SET("service.load.queue_depth", pool_->queued());
    CSPDB_GAUGE_SET("service.load.in_flight", server_->pending());
    CSPDB_GAUGE_SET(
        "service.load.cache_bytes",
        static_cast<int64_t>(server_->cache().stats().bytes));
    CSPDB_GAUGE_MAX("service.load.peak_in_flight", server_->pending());
  }

  cspdb::service::CspdbService* server_;
  cspdb::exec::ThreadPool* pool_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

bool WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << contents;
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspdb;
  using namespace cspdb::service;

  std::string metrics_out;
  std::string stats_out;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_out = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--stats-out=", 12) == 0) {
      stats_out = argv[i] + 12;
    } else {
      positional.push_back(argv[i]);
    }
  }

  WorkloadOptions workload;
  workload.num_requests =
      positional.size() > 0 ? std::atoi(positional[0]) : 400;
  workload.pool_size = positional.size() > 1 ? std::atoi(positional[1]) : 12;
  workload.zipf_s = positional.size() > 2 ? std::atof(positional[2]) : 1.1;
  workload.mutation_prob =
      positional.size() > 3 ? std::atof(positional[3]) : 0.05;
  const int64_t timeout_ms =
      positional.size() > 4 ? std::atoll(positional[4]) : 2000;
  workload.seed = 42;

  std::printf("generating %d requests (pool %d per kind, zipf s=%.2f, "
              "mutation %.2f)...\n",
              workload.num_requests, workload.pool_size, workload.zipf_s,
              workload.mutation_prob);
  std::vector<ServiceRequest> stream = GenerateRequestStream(workload);

  ServiceOptions options;
  options.default_timeout_ns = timeout_ms * 1'000'000;
  CspdbService server(options);

  int64_t by_status[3] = {0, 0, 0};
  int64_t total_latency_ns = 0;
  int64_t max_latency_ns = 0;
  int64_t total_queue_wait_ns = 0;
  {
    GaugeSampler sampler(&server, &exec::ThreadPool::Global());

    std::vector<std::future<Response>> futures;
    futures.reserve(stream.size());
    for (ServiceRequest& request : stream) {
      futures.push_back(server.Submit(std::move(request)));
    }

    for (auto& f : futures) {
      Response r = f.get();
      ++by_status[static_cast<int>(r.status)];
      total_latency_ns += r.latency_ns;
      total_queue_wait_ns += r.queue_wait_ns;
      if (r.latency_ns > max_latency_ns) max_latency_ns = r.latency_ns;
    }
  }  // sampler takes its final quiesced sample here

  const ServiceStats stats = server.stats();
  const CacheStats cache = server.cache().stats();
  std::printf("\n--- serving summary ---\n");
  std::printf("requests:          %lld\n", (long long)stats.requests);
  std::printf("  ok:              %lld\n", (long long)by_status[0]);
  std::printf("  deadline_exceeded: %lld\n", (long long)by_status[1]);
  std::printf("  rejected:        %lld\n", (long long)by_status[2]);
  std::printf("cache hits:        %lld (misses %lld)\n",
              (long long)stats.cache_hits, (long long)stats.cache_misses);
  std::printf("coalesced:         %lld\n", (long long)stats.coalesced);
  std::printf("engine runs:       %lld\n",
              (long long)stats.engine_invocations);
  std::printf("cache bytes:       %lld / %lld (entries %lld, "
              "evictions %lld)\n",
              (long long)cache.bytes, (long long)server.cache().max_bytes(),
              (long long)cache.entries, (long long)cache.evictions);
  const int64_t handled = by_status[0] + by_status[1];
  std::printf("mean latency:      %.1f us (max %.1f us)\n",
              handled > 0 ? total_latency_ns / 1e3 / handled : 0.0,
              max_latency_ns / 1e3);
  std::printf("mean queue wait:   %.1f us\n",
              handled > 0 ? total_queue_wait_ns / 1e3 / handled : 0.0);
  std::printf("stats store keys:  %lld\n",
              (long long)server.stats_store().size());

  // Machine-readable line for CI (service-smoke greps cache_hits).
  std::printf("cache_hits=%lld coalesced=%lld engine_invocations=%lld "
              "shed=%lld rejected=%lld\n",
              (long long)stats.cache_hits, (long long)stats.coalesced,
              (long long)stats.engine_invocations,
              (long long)stats.shed_deadline, (long long)stats.rejected);

  if (!metrics_out.empty()) {
    const std::string json = obs::MetricsRegistry::Global().SnapshotJson();
    if (!WriteTextFile(metrics_out, json)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_out.c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!stats_out.empty()) {
    if (!WriteTextFile(stats_out, server.stats_store().DumpJson())) {
      std::fprintf(stderr, "failed to write stats store to %s\n",
                   stats_out.c_str());
      return 1;
    }
    std::printf("stats store written to %s\n", stats_out.c_str());
  }

  // In observability builds the "service.*" metrics mirror these counts.
  if (obs::MetricsRegistry::Global().HasCounter("service.requests")) {
    std::printf("\nmetrics snapshot:\n%s\n",
                obs::MetricsRegistry::Global().SnapshotJson().c_str());
  }
  return 0;
}
