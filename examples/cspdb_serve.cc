// cspdb_serve: replay a generated request stream through CspdbService and
// report serving statistics (hit rate, coalescing, sheds, latency). The
// stream is seeded, so two runs with the same flags see identical
// requests. With CSPDB_TRACE=out.json the run emits a Chrome trace whose
// "service.*" spans show the cache/engine split per request.
//
//   cspdb_serve [num_requests] [pool_size] [zipf_s] [mutation_prob]
//               [timeout_ms]
//
// The final "cache_hits=N ..." line is machine-greppable (CI asserts a
// nonzero hit count on the default workload).

#include <cstdio>
#include <cstdlib>
#include <future>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "service/server.h"
#include "service/workload.h"

int main(int argc, char** argv) {
  using namespace cspdb;
  using namespace cspdb::service;

  WorkloadOptions workload;
  workload.num_requests = argc > 1 ? std::atoi(argv[1]) : 400;
  workload.pool_size = argc > 2 ? std::atoi(argv[2]) : 12;
  workload.zipf_s = argc > 3 ? std::atof(argv[3]) : 1.1;
  workload.mutation_prob = argc > 4 ? std::atof(argv[4]) : 0.05;
  const int64_t timeout_ms = argc > 5 ? std::atoll(argv[5]) : 2000;
  workload.seed = 42;

  std::printf("generating %d requests (pool %d per kind, zipf s=%.2f, "
              "mutation %.2f)...\n",
              workload.num_requests, workload.pool_size, workload.zipf_s,
              workload.mutation_prob);
  std::vector<ServiceRequest> stream = GenerateRequestStream(workload);

  ServiceOptions options;
  options.default_timeout_ns = timeout_ms * 1'000'000;
  CspdbService server(options);

  std::vector<std::future<Response>> futures;
  futures.reserve(stream.size());
  for (ServiceRequest& request : stream) {
    futures.push_back(server.Submit(std::move(request)));
  }

  int64_t by_status[3] = {0, 0, 0};
  int64_t total_latency_ns = 0;
  int64_t max_latency_ns = 0;
  for (auto& f : futures) {
    Response r = f.get();
    ++by_status[static_cast<int>(r.status)];
    total_latency_ns += r.latency_ns;
    if (r.latency_ns > max_latency_ns) max_latency_ns = r.latency_ns;
  }

  const ServiceStats stats = server.stats();
  const CacheStats cache = server.cache().stats();
  std::printf("\n--- serving summary ---\n");
  std::printf("requests:          %lld\n", (long long)stats.requests);
  std::printf("  ok:              %lld\n", (long long)by_status[0]);
  std::printf("  deadline_exceeded: %lld\n", (long long)by_status[1]);
  std::printf("  rejected:        %lld\n", (long long)by_status[2]);
  std::printf("cache hits:        %lld (misses %lld)\n",
              (long long)stats.cache_hits, (long long)stats.cache_misses);
  std::printf("coalesced:         %lld\n", (long long)stats.coalesced);
  std::printf("engine runs:       %lld\n",
              (long long)stats.engine_invocations);
  std::printf("cache bytes:       %lld / %lld (entries %lld, "
              "evictions %lld)\n",
              (long long)cache.bytes, (long long)server.cache().max_bytes(),
              (long long)cache.entries, (long long)cache.evictions);
  const int64_t handled = by_status[0] + by_status[1];
  std::printf("mean latency:      %.1f us (max %.1f us)\n",
              handled > 0 ? total_latency_ns / 1e3 / handled : 0.0,
              max_latency_ns / 1e3);

  // Machine-readable line for CI (service-smoke greps cache_hits).
  std::printf("cache_hits=%lld coalesced=%lld engine_invocations=%lld "
              "shed=%lld rejected=%lld\n",
              (long long)stats.cache_hits, (long long)stats.coalesced,
              (long long)stats.engine_invocations,
              (long long)stats.shed_deadline, (long long)stats.rejected);

  // In observability builds the "service.*" metrics mirror these counts.
  if (obs::MetricsRegistry::Global().HasCounter("service.requests")) {
    std::printf("\nmetrics snapshot:\n%s\n",
                obs::MetricsRegistry::Global().SnapshotJson().c_str());
  }
  return 0;
}
