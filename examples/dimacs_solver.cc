// A miniature SAT front-end: reads a DIMACS CNF file (or a built-in demo
// formula), classifies the formula against Schaefer's dichotomy, and
// dispatches to the cheapest solver the classification allows — unit
// propagation for Horn, implication-graph SCC for 2-CNF, Gaussian
// elimination if every clause shape is affine, and CSP search otherwise.
//
// Usage: dimacs_solver [file.cnf]

#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "boolean/cnf.h"
#include "boolean/horn_sat.h"
#include "boolean/schaefer.h"
#include "boolean/two_sat.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "io/text_format.h"

namespace {

constexpr char kDemo[] =
    "c demo: a small mixed instance\n"
    "p cnf 5 6\n"
    "1 -2 0\n"
    "-1 3 0\n"
    "2 -3 -4 0\n"
    "4 5 0\n"
    "-4 -5 0\n"
    "-1 -3 5 0\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cspdb;

  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no file given; solving a built-in demo formula)\n");
    text = kDemo;
  }

  CnfFormula phi = ReadDimacs(text);
  std::printf("%d variables, %zu clauses, max clause size %d\n",
              phi.num_variables, phi.clauses.size(), phi.MaxClauseSize());

  std::optional<std::vector<int>> model;
  if (phi.IsHorn()) {
    std::printf("class: Horn -> unit propagation\n");
    model = SolveHorn(phi);
  } else if (phi.Is2Cnf()) {
    std::printf("class: 2-CNF -> implication-graph SCC\n");
    model = SolveTwoSat(phi);
  } else {
    int width = phi.MaxClauseSize();
    Vocabulary voc = CnfVocabulary(width);
    Structure a = CnfToStructure(phi, voc);
    Structure b = SatTemplate(width);
    SchaeferClassification cls = ClassifyBooleanTemplate(b);
    std::printf("clause-shape template classes: %s\n",
                cls.ToString().c_str());
    BooleanSolveResult dispatched = SolveBooleanCsp(a, b);
    if (dispatched.decided) {
      std::printf("-> dedicated polynomial solver\n");
      if (dispatched.solvable) model = dispatched.model;
    } else {
      std::printf("-> NP side of the dichotomy: MAC + MRV search\n");
      CspInstance csp = ToCspInstance(a, b);
      BacktrackingSolver solver(csp);
      model = solver.Solve();
      std::printf("   (%lld nodes)\n",
                  static_cast<long long>(solver.stats().nodes));
    }
  }

  if (!model.has_value()) {
    std::printf("UNSATISFIABLE\n");
    return 1;
  }
  std::printf("SATISFIABLE\nv ");
  for (int v = 0; v < phi.num_variables; ++v) {
    std::printf("%d ", (*model)[v] == 1 ? v + 1 : -(v + 1));
  }
  std::printf("0\n");
  return 0;
}
