// The existential pebble game, Datalog, and consistency — Sections 4-5
// live: plays the k-pebble game between an odd cycle and K2 for k = 2, 3,
// shows the largest winning strategy shrink and collapse, and prints (a
// piece of) the canonical Datalog program that expresses the Spoiler's
// win.

#include <cstdio>

#include "boolean/hell_nesetril.h"
#include "consistency/establish.h"
#include "datalog/canonical_program.h"
#include "datalog/eval.h"
#include "games/pebble_game.h"

int main() {
  using namespace cspdb;

  Structure c5 = CycleGraph(5);
  Structure k2 = CliqueGraph(2);
  std::printf("A = C5 (odd cycle), B = K2: is A 2-colorable? "
              "(it is not)\n\n");

  for (int k = 2; k <= 3; ++k) {
    PebbleGame game(c5, k2, k);
    std::printf("k = %d: universe of partial homomorphisms: %lld, "
                "largest winning strategy: %zu, Duplicator wins: %s\n",
                k, static_cast<long long>(game.UniverseSize()),
                game.LargestWinningStrategy().size(),
                game.DuplicatorWins() ? "yes" : "no");
  }
  std::printf("\nThe 2-pebble game cannot refute 2-colorability of an "
              "odd cycle (arc consistency holds); three pebbles "
              "collapse the strategy (Theorem 4.6 / Section 5).\n\n");

  // Establishing strong 2-consistency still succeeds...
  EstablishResult establish2 = EstablishStrongKConsistency(c5, k2, 2);
  std::printf("Establish strong 2-consistency: %s (%zu constraints in "
              "the induced instance)\n",
              establish2.possible ? "possible" : "impossible",
              establish2.csp.constraints().size());
  // ...while 3-consistency cannot be established (Theorem 5.6).
  EstablishResult establish3 = EstablishStrongKConsistency(c5, k2, 3);
  std::printf("Establish strong 3-consistency: %s\n\n",
              establish3.possible ? "possible" : "impossible");

  // The same decision through Datalog (Theorem 4.5(3)).
  DatalogProgram rho = CanonicalKDatalogProgram(k2, 3);
  DatalogResult eval = EvaluateSemiNaive(rho, c5);
  std::printf("Canonical 3-Datalog program rho_K2: %zu rules, width %d; "
              "goal derived on C5: %s\n",
              rho.rules().size(), rho.Width(),
              eval.GoalDerived(rho) ? "yes (Spoiler wins)" : "no");
  std::printf("First rules of rho_K2:\n");
  for (std::size_t i = 0; i < rho.rules().size() && i < 6; ++i) {
    std::printf("  %s\n", rho.rules()[i].ToString().c_str());
  }
  return 0;
}
