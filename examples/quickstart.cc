// Quickstart: model a small CSP, view it as a homomorphism problem and as
// a join-evaluation problem, and solve it three ways. Mirrors Section 2
// of the paper in ~80 lines.

#include <cstdio>

#include "csp/convert.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "db/algebra.h"
#include "relational/homomorphism.h"

int main() {
  using namespace cspdb;

  // A tiny scheduling puzzle: three tasks, three time slots; tasks 0 and
  // 1 conflict, tasks 1 and 2 conflict, and task 0 must run before task 2.
  CspInstance csp(/*num_variables=*/3, /*num_values=*/3);
  csp.SetVariableName(0, "taskA");
  csp.SetVariableName(1, "taskB");
  csp.SetVariableName(2, "taskC");

  std::vector<Tuple> different;
  std::vector<Tuple> before;
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      if (x != y) different.push_back({x, y});
      if (x < y) before.push_back({x, y});
    }
  }
  csp.AddConstraint({0, 1}, different);
  csp.AddConstraint({1, 2}, different);
  csp.AddConstraint({0, 2}, before);

  std::printf("Instance:\n%s\n", csp.DebugString().c_str());

  // 1. Solve by backtracking search (MAC + MRV).
  BacktrackingSolver solver(csp);
  auto solution = solver.Solve();
  if (solution.has_value()) {
    std::printf("Search found a solution:\n");
    for (int v = 0; v < csp.num_variables(); ++v) {
      std::printf("  %s -> slot %d\n", csp.VariableName(v).c_str(),
                  (*solution)[v]);
    }
    std::printf("  (%lld nodes explored)\n",
                static_cast<long long>(solver.stats().nodes));
  }

  // 2. The same instance as a homomorphism problem (Section 2).
  HomInstance hom = ToHomomorphismInstance(csp);
  std::printf("\nAs a homomorphism problem: A has %d tuples over %d "
              "relations, B is the template.\n",
              hom.a.TotalTuples(), hom.a.vocabulary().size());
  auto h = FindHomomorphism(hom.a, hom.b);
  std::printf("Homomorphism exists: %s\n", h.has_value() ? "yes" : "no");

  // 3. The same instance as join evaluation (Proposition 2.1).
  int64_t peak = 0;
  bool solvable = SolvableByJoin(csp, &peak);
  std::printf("\nAs join evaluation: join nonempty = %s (peak "
              "intermediate %lld rows)\n",
              solvable ? "yes" : "no", static_cast<long long>(peak));

  // All three views agree — that is Section 2 of the paper.
  std::printf("\nAll three formulations agree: %s\n",
              (solution.has_value() == h.has_value() &&
               h.has_value() == solvable)
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
