// A width-analysis tool: reads a relational structure (text format, or a
// built-in demo), reports the widths Section 6 compares — exact treewidth
// (small graphs), heuristic induced widths, the degeneracy lower bound,
// hypertree-width upper bound, incidence treewidth — and validates the
// min-fill decomposition.
//
// Usage: treewidth_tool [structure.txt]

#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "db/acyclic.h"
#include "io/text_format.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"
#include "treewidth/hypertree.h"
#include "treewidth/incidence.h"
#include "treewidth/tree_decomposition.h"

namespace {

constexpr char kDemo[] =
    "structure\n"
    "# a 3x3 grid as a binary relation\n"
    "domain 9\n"
    "relation E 2\n"
    "tuple E 0 1\ntuple E 1 2\n"
    "tuple E 3 4\ntuple E 4 5\n"
    "tuple E 6 7\ntuple E 7 8\n"
    "tuple E 0 3\ntuple E 3 6\n"
    "tuple E 1 4\ntuple E 4 7\n"
    "tuple E 2 5\ntuple E 5 8\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace cspdb;

  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::printf("(no file given; analyzing a built-in 3x3 grid)\n");
    text = kDemo;
  }

  Structure a = ParseStructure(text);
  Graph gaifman = GaifmanGraph(a);
  std::printf("structure: %d elements, %d tuples; Gaifman graph: %d "
              "edges\n",
              a.domain_size(), a.TotalTuples(), gaifman.NumEdges());

  std::printf("degeneracy lower bound : %d\n",
              TreewidthLowerBound(gaifman));
  if (gaifman.n <= 20) {
    std::printf("exact treewidth        : %d\n", ExactTreewidth(gaifman));
  } else {
    std::printf("exact treewidth        : skipped (n > 20)\n");
  }
  std::printf("min-degree width       : %d\n",
              InducedWidth(gaifman, MinDegreeOrdering(gaifman)));
  int min_fill = InducedWidth(gaifman, MinFillOrdering(gaifman));
  std::printf("min-fill width         : %d\n", min_fill);

  TreeDecomposition td = MinFillDecomposition(gaifman);
  std::printf("min-fill decomposition : %zu bags, width %d, valid for "
              "graph: %s, valid for structure: %s\n",
              td.bags.size(), td.Width(),
              IsValidDecomposition(gaifman, td) ? "yes" : "no",
              IsValidForStructure(a, td) ? "yes" : "no");

  // Hypergraph views.
  Hypergraph h;
  for (int r = 0; r < a.vocabulary().size(); ++r) {
    for (const Tuple& t : a.tuples(r)) {
      std::vector<int> edge(t.begin(), t.end());
      h.edges.push_back(edge);
    }
  }
  std::printf("alpha-acyclic          : %s\n",
              IsAlphaAcyclic(h) ? "yes" : "no");
  auto hw = HypertreeWidthUpperBound(h);
  if (hw.has_value()) {
    std::printf("hypertree width (ub)   : %d\n", *hw);
  }
  Graph incidence = IncidenceGraph(h);
  if (incidence.n <= 20) {
    std::printf("incidence treewidth    : %d\n",
                ExactTreewidth(incidence));
  }
  return 0;
}
