// Map coloring of mainland Australia: the classic CSP introduction.
// Demonstrates H-coloring (CSP(K_k)), the Hell-Nešetřil dichotomy view,
// arc consistency as preprocessing, and the pebble-game certificate for
// unsolvability with two colors.

#include <cstdio>

#include <string>
#include <vector>

#include "boolean/hell_nesetril.h"
#include "consistency/arc_consistency.h"
#include "csp/convert.h"
#include "csp/solver.h"
#include "games/pebble_game.h"

int main() {
  using namespace cspdb;

  const std::vector<std::string> regions = {"WA", "NT", "SA", "Q",
                                            "NSW", "V", "T"};
  const std::vector<std::pair<int, int>> borders = {
      {0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {2, 5}, {3, 4},
      {4, 5}};

  Structure australia =
      MakeUndirectedGraph(static_cast<int>(regions.size()), borders);
  for (std::size_t i = 0; i < regions.size(); ++i) {
    australia.SetElementName(static_cast<int>(i), regions[i]);
  }

  for (int colors = 2; colors <= 3; ++colors) {
    Structure palette = CliqueGraph(colors);
    CspInstance csp = ToCspInstance(australia, palette);
    BacktrackingSolver solver(csp);
    auto coloring = solver.Solve();
    std::printf("%d colors: %s", colors,
                coloring.has_value() ? "colorable\n" : "not colorable\n");
    if (coloring.has_value()) {
      for (std::size_t i = 0; i < regions.size(); ++i) {
        std::printf("  %-3s -> color %d\n", regions[i].c_str(),
                    (*coloring)[i]);
      }
    } else {
      // The Spoiler's 3-pebble win is a poly-time checkable certificate.
      PebbleGame game(australia, palette, 3);
      std::printf("  3-pebble game: Spoiler wins = %s (certifies "
                  "unsolvability)\n",
                  game.DuplicatorWins() ? "no" : "yes");
    }

    // The dichotomy view: K2 is bipartite (poly), K3 is the NP side.
    HColoringResult dichotomy = DecideHColoring(australia, palette);
    std::printf("  Hell-Nešetřil: template on the %s side\n",
                dichotomy.tractable ? "polynomial" : "NP-complete");
  }

  // Arc consistency as preprocessing for the 3-coloring instance.
  CspInstance csp = ToCspInstance(australia, CliqueGraph(3));
  AcResult ac = EnforceGac(csp);
  std::printf("\nGAC preprocessing: consistent=%s, %lld revisions, %lld "
              "prunings\n",
              ac.consistent ? "yes" : "no",
              static_cast<long long>(ac.revisions),
              static_cast<long long>(ac.prunings));
  return 0;
}
