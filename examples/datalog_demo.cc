// A miniature Datalog tool: reads a program (rule syntax) and a database
// (structure text format) from files, or runs a built-in ancestry demo,
// then prints the derived goal facts from both evaluators.
//
// Usage: datalog_demo [program.dl database.txt]

#include <cstdio>

#include <fstream>
#include <sstream>
#include <string>

#include "datalog/eval.h"
#include "io/rule_parser.h"
#include "io/text_format.h"

namespace {

constexpr char kDemoProgram[] =
    "% ancestry: transitive closure of Parent, restricted to Person\n"
    "Ancestor(x, y) :- Parent(x, y).\n"
    "Ancestor(x, y) :- Ancestor(x, z), Parent(z, y).\n"
    "Matriarch(x) :- Ancestor(x, y), Eldest(x).\n";

constexpr char kDemoDatabase[] =
    "structure\n"
    "domain 6\n"
    "relation Parent 2\n"
    "relation Eldest 1\n"
    "tuple Parent 0 1\n"
    "tuple Parent 0 2\n"
    "tuple Parent 1 3\n"
    "tuple Parent 2 4\n"
    "tuple Parent 4 5\n"
    "tuple Eldest 0\n";

std::string ReadFile(const char* path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cspdb;

  std::string program_text =
      argc > 2 ? ReadFile(argv[1]) : std::string(kDemoProgram);
  std::string database_text =
      argc > 2 ? ReadFile(argv[2]) : std::string(kDemoDatabase);
  if (argc <= 2) {
    std::printf("(no files given; running the built-in ancestry demo)\n\n");
  }

  DatalogProgram program = ParseDatalogProgram(program_text);
  Structure database = ParseStructure(database_text);

  std::printf("Program (%zu rules, width %d, goal %s):\n",
              program.rules().size(), program.Width(),
              program.goal().c_str());
  for (const DatalogRule& rule : program.rules()) {
    std::printf("  %s\n", rule.ToString().c_str());
  }

  DatalogResult naive = EvaluateNaive(program, database);
  DatalogResult semi = EvaluateSemiNaive(program, database);
  std::printf("\nNaive:     %lld derivations over %lld rounds\n",
              static_cast<long long>(naive.derivations),
              static_cast<long long>(naive.iterations));
  std::printf("Semi-naive: %lld derivations over %lld rounds\n",
              static_cast<long long>(semi.derivations),
              static_cast<long long>(semi.iterations));

  std::printf("\nDerived %s facts:\n", program.goal().c_str());
  for (const Tuple& fact : semi.Facts(program.goal())) {
    std::printf("  %s(", program.goal().c_str());
    for (std::size_t i = 0; i < fact.size(); ++i) {
      std::printf("%s%d", i > 0 ? ", " : "", fact[i]);
    }
    std::printf(")\n");
  }
  bool agree = true;
  for (const std::string& pred : program.predicates()) {
    if (program.IsIdb(pred) && naive.Facts(pred) != semi.Facts(pred)) {
      agree = false;
    }
  }
  std::printf("\nEvaluators agree on every IDB: %s\n",
              agree ? "yes" : "NO (bug!)");
  return 0;
}
