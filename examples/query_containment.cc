// Conjunctive-query containment via the Chandra-Merlin theorem
// (Section 2): builds canonical databases and decides containment both by
// homomorphism search and by query evaluation, on a small catalogue of
// classic query pairs.

#include <cstdio>

#include <string>
#include <vector>

#include "db/containment.h"
#include "db/conjunctive_query.h"

namespace {

using cspdb::Atom;
using cspdb::ConjunctiveQuery;

void Report(const std::string& label, const ConjunctiveQuery& q1,
            const ConjunctiveQuery& q2) {
  bool hom = IsContainedIn(q1, q2);
  bool eval = IsContainedInViaEvaluation(q1, q2);
  std::printf("%s\n  Q1 = %s\n  Q2 = %s\n  Q1 <= Q2: %s (evaluation "
              "formulation agrees: %s)\n\n",
              label.c_str(), q1.ToString().c_str(), q2.ToString().c_str(),
              hom ? "yes" : "no", hom == eval ? "yes" : "NO (bug!)");
}

}  // namespace

int main() {
  // Distance-2 pairs vs "out-edge and in-edge".
  ConjunctiveQuery two_path(3, {0, 1}, {{"E", {0, 2}}, {"E", {2, 1}}});
  ConjunctiveQuery in_out(4, {0, 1}, {{"E", {0, 2}}, {"E", {3, 1}}});
  Report("distance-2 vs in/out edges", two_path, in_out);
  Report("in/out edges vs distance-2", in_out, two_path);

  // A redundant atom does not change the query.
  ConjunctiveQuery redundant(4, {0, 1},
                             {{"E", {0, 2}}, {"E", {2, 1}}, {"E", {0, 3}}});
  Report("redundant atom", two_path, redundant);
  Report("redundant atom (reverse)", redundant, two_path);

  // Triangles vs self-joins: Q(x) with a triangle through x is contained
  // in Q(x) with a closed walk of length 3 (they are equivalent as
  // patterns), but not in "x has a loop".
  ConjunctiveQuery triangle(
      3, {0}, {{"E", {0, 1}}, {"E", {1, 2}}, {"E", {2, 0}}});
  ConjunctiveQuery loop(1, {0}, {{"E", {0, 0}}});
  Report("triangle vs loop", triangle, loop);
  Report("loop vs triangle", loop, triangle);
  return 0;
}
