// N-queens as a CSP (one variable per column, value = row): compares the
// solver configurations from the ablation study on a classic benchmark
// and prints one solution.

#include <cstdio>

#include "csp/backjump_solver.h"
#include "csp/instance.h"
#include "csp/solver.h"

namespace {

cspdb::CspInstance Queens(int n) {
  cspdb::CspInstance csp(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<cspdb::Tuple> allowed;
      for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
          if (a != b && a - b != j - i && b - a != j - i) {
            allowed.push_back({a, b});
          }
        }
      }
      csp.AddConstraint({i, j}, std::move(allowed));
    }
  }
  return csp;
}

}  // namespace

int main() {
  using namespace cspdb;
  const int n = 8;
  CspInstance csp = Queens(n);

  struct Config {
    const char* name;
    Propagation propagation;
    bool mrv;
  };
  const Config configs[] = {
      {"plain backtracking", Propagation::kNone, false},
      {"forward checking + MRV", Propagation::kForwardChecking, true},
      {"MAC + MRV", Propagation::kGac, true},
  };

  std::vector<int> board;
  for (const Config& config : configs) {
    SolverOptions options;
    options.propagation = config.propagation;
    options.mrv = config.mrv;
    BacktrackingSolver solver(csp, options);
    auto solution = solver.Solve();
    std::printf("%-24s nodes=%-8lld backtracks=%lld\n", config.name,
                static_cast<long long>(solver.stats().nodes),
                static_cast<long long>(solver.stats().backtracks));
    if (solution.has_value()) board = *solution;
  }

  BackjumpSolver cbj(csp);
  auto cbj_solution = cbj.Solve();
  std::printf("%-24s nodes=%-8lld backjumps=%lld\n",
              "conflict backjumping",
              static_cast<long long>(cbj.stats().nodes),
              static_cast<long long>(cbj.stats().backjumps));
  if (cbj_solution.has_value()) board = *cbj_solution;

  std::printf("\nOne solution:\n");
  for (int row = 0; row < n; ++row) {
    for (int col = 0; col < n; ++col) {
      std::printf("%c ", board[col] == row ? 'Q' : '.');
    }
    std::printf("\n");
  }

  BacktrackingSolver counter(csp);
  std::printf("\nTotal %d-queens solutions: %lld\n", n,
              static_cast<long long>(counter.CountSolutions()));
  return 0;
}
