// Series-parallel job scheduling: a bounded-treewidth CSP solved by
// bucket elimination (Theorem 6.2). Jobs form a chain of dependent
// stages with occasional cross constraints — the primal graph is a
// partial 2-tree, so the instance is solvable in O(n d^3) regardless of
// how many jobs there are.

#include <cstdio>

#include "csp/instance.h"
#include "csp/solver.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/exact.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"

int main() {
  using namespace cspdb;

  const int kJobs = 18;
  const int kSlots = 4;
  CspInstance schedule(kJobs, kSlots);

  std::vector<Tuple> strictly_before;
  std::vector<Tuple> not_equal;
  for (int x = 0; x < kSlots; ++x) {
    for (int y = 0; y < kSlots; ++y) {
      if (x < y) strictly_before.push_back({x, y});
      if (x != y) not_equal.push_back({x, y});
    }
  }

  // Chain of dependencies: job i finishes before job i+1 every third
  // step; otherwise they merely must not share a slot.
  for (int i = 0; i + 1 < kJobs; ++i) {
    schedule.AddConstraint({i, i + 1},
                           i % 3 == 0 ? strictly_before : not_equal);
  }
  // Cross constraints one step apart keep the width at 2.
  for (int i = 0; i + 2 < kJobs; i += 4) {
    schedule.AddConstraint({i, i + 2}, not_equal);
  }

  Graph primal = GaifmanGraphOfCsp(schedule);
  std::printf("Jobs: %d, slots: %d, constraints: %zu\n", kJobs, kSlots,
              schedule.constraints().size());
  std::printf("Primal graph treewidth: %d (min-fill width %d)\n",
              ExactTreewidth(primal),
              InducedWidth(primal, MinFillOrdering(primal)));

  BucketStats stats;
  auto solution = SolveWithTreewidthHeuristic(schedule, &stats);
  if (!solution.has_value()) {
    std::printf("No feasible schedule.\n");
    return 1;
  }
  std::printf("Bucket elimination solved it (max table %lld rows):\n",
              static_cast<long long>(stats.max_table_rows));
  for (int i = 0; i < kJobs; ++i) {
    std::printf("  job %2d -> slot %d\n", i, (*solution)[i]);
  }

  // Cross-check with search.
  BacktrackingSolver solver(schedule);
  std::printf("Search agrees: %s\n",
              solver.Solve().has_value() ? "yes" : "NO (bug!)");
  return 0;
}
