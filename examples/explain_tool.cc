// EXPLAIN tool: runs one small workload through each major engine —
// backtracking search, GAC, Yannakakis over a join forest, bucket
// elimination, and semi-naive Datalog — and prints the plan each engine
// executed annotated with the row/prune counts it observed, followed by
// the process-wide metrics snapshot.
//
// With CSPDB_TRACE=<path> set (and an instrumented build), the same run
// also writes a Chrome-trace JSON covering all five subsystems; load it
// at https://ui.perfetto.dev.

#include <cstdio>

#include <algorithm>
#include <vector>

#include "consistency/arc_consistency.h"
#include "csp/instance.h"
#include "csp/solver.h"
#include "datalog/eval.h"
#include "db/acyclic.h"
#include "db/relation.h"
#include "io/rule_parser.h"
#include "io/text_format.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "treewidth/bucket_elimination.h"
#include "treewidth/gaifman.h"
#include "treewidth/heuristics.h"

namespace {

// A ring of `n` tasks over `d` slots: adjacent tasks differ, task 0 runs
// strictly before task 1. Small enough to read, rich enough that every
// engine does visible work.
cspdb::CspInstance RingInstance(int n, int d) {
  cspdb::CspInstance csp(n, d);
  std::vector<cspdb::Tuple> different;
  std::vector<cspdb::Tuple> before;
  for (int x = 0; x < d; ++x) {
    for (int y = 0; y < d; ++y) {
      if (x != y) different.push_back({x, y});
      if (x < y) before.push_back({x, y});
    }
  }
  for (int v = 0; v < n; ++v) {
    csp.SetVariableName(v, "t" + std::to_string(v));
    csp.AddConstraint({v, (v + 1) % n}, different);
  }
  csp.AddConstraint({0, 1}, before);
  return csp;
}

}  // namespace

int main() {
  using namespace cspdb;

  // Touching the global session activates CSPDB_TRACE (if set) before any
  // engine emits spans.
  const bool tracing = obs::TraceSession::Global().enabled();

  CspInstance csp = RingInstance(/*n=*/8, /*d=*/3);

  // 1. Backtracking search under MAC + MRV.
  SolverOptions options;
  BacktrackingSolver solver(csp, options);
  auto solution = solver.Solve();
  std::printf("== solver ==\n%s", obs::ExplainSolver(
                                      csp, options, solver.stats(),
                                      &solver.revision_counts())
                                      .c_str());
  std::printf("solution found: %s\n\n", solution.has_value() ? "yes" : "no");

  // 2. Standalone GAC pass over the same instance.
  AcResult gac = EnforceGac(csp);
  std::printf("== gac ==\nconsistent=%s revisions=%lld prunings=%lld "
              "wipeouts=%lld\n\n",
              gac.consistent ? "yes" : "no",
              static_cast<long long>(gac.revisions),
              static_cast<long long>(gac.prunings),
              static_cast<long long>(gac.wipeouts));

  // 3. Yannakakis over an acyclic join: a path query R0(a,b) R1(b,c)
  //    R2(c,d) with skewed cardinalities so the full reducer has rows to
  //    remove.
  std::vector<DbRelation> relations;
  {
    DbRelation r0({0, 1}), r1({1, 2}), r2({2, 3});
    for (int i = 0; i < 12; ++i) r0.AddRow({i % 4, i});
    for (int i = 0; i < 12; ++i) r1.AddRow({i, i % 3});
    for (int i = 0; i < 3; ++i) r2.AddRow({i, i + 1});
    relations = {r0, r1, r2};
  }
  auto forest = BuildJoinForest(HypergraphOfSchemas(relations));
  if (forest.has_value()) {
    YannakakisStats ystats;
    DbRelation answer = YannakakisEvaluate(*forest, relations, {0, 3},
                                           /*peak_rows=*/nullptr, &ystats);
    std::printf("== yannakakis ==\n%s",
                obs::ExplainJoinForest(*forest, relations, &ystats).c_str());
    std::printf("answer rows: %zu\n\n", answer.size());
  }

  // 4. Bucket elimination along a min-fill ordering.
  std::vector<int> order = MinFillOrdering(GaifmanGraphOfCsp(csp));
  std::reverse(order.begin(), order.end());
  BucketStats bstats;
  auto be_solution = SolveByBucketElimination(csp, order, &bstats);
  std::printf("== bucket elimination ==\n%s",
              obs::ExplainBucketElimination(csp, order, bstats).c_str());
  std::printf("solution found: %s\n\n",
              be_solution.has_value() ? "yes" : "no");

  // 5. Semi-naive Datalog: transitive closure of a path.
  DatalogProgram program = ParseDatalogProgram(
      "Reach(x, y) :- Edge(x, y).\n"
      "Reach(x, y) :- Reach(x, z), Edge(z, y).\n",
      /*goal=*/"Reach");
  Structure edb = ParseStructure(
      "structure\n"
      "domain 6\n"
      "relation Edge 2\n"
      "tuple Edge 0 1\n"
      "tuple Edge 1 2\n"
      "tuple Edge 2 3\n"
      "tuple Edge 3 4\n"
      "tuple Edge 4 5\n");
  DatalogResult datalog = EvaluateSemiNaive(program, edb);
  std::printf("== datalog ==\nsemi-naive: %lld iterations, %lld "
              "derivations, deltas [",
              static_cast<long long>(datalog.iterations),
              static_cast<long long>(datalog.derivations));
  for (std::size_t i = 0; i < datalog.delta_sizes.size(); ++i) {
    std::printf("%s%lld", i > 0 ? ", " : "",
                static_cast<long long>(datalog.delta_sizes[i]));
  }
  std::printf("], %zu facts\n\n", datalog.Facts("Reach").size());

  std::printf("== metrics ==\n%s\n",
              obs::MetricsRegistry::Global().SnapshotJson().c_str());
  if (tracing) {
    obs::TraceSession::Global().Stop();
    std::printf("(trace written to $CSPDB_TRACE)\n");
  }
  return 0;
}
