// 4x4 Sudoku as a CSP: 16 variables over 4 values with all-different
// constraints on rows, columns, and boxes, plus given clues. Shows
// constraint modeling with n-ary scopes, MAC search, and solution
// counting.

#include <cstdio>

#include <algorithm>
#include <vector>

#include "csp/instance.h"
#include "csp/solver.h"

namespace {

using cspdb::CspInstance;
using cspdb::Tuple;

// All permutations of {0,1,2,3}: the allowed tuples of an all-different
// constraint over four cells.
std::vector<Tuple> AllDifferent4() {
  std::vector<Tuple> tuples;
  Tuple t{0, 1, 2, 3};
  do {
    tuples.push_back(t);
  } while (std::next_permutation(t.begin(), t.end()));
  return tuples;
}

}  // namespace

int main() {
  using namespace cspdb;

  CspInstance sudoku(16, 4);
  auto cell = [](int row, int col) { return 4 * row + col; };
  std::vector<Tuple> all_diff = AllDifferent4();

  for (int r = 0; r < 4; ++r) {
    std::vector<int> row, col;
    for (int c = 0; c < 4; ++c) {
      row.push_back(cell(r, c));
      col.push_back(cell(c, r));
    }
    sudoku.AddConstraint(row, all_diff);
    sudoku.AddConstraint(col, all_diff);
  }
  for (int br = 0; br < 2; ++br) {
    for (int bc = 0; bc < 2; ++bc) {
      std::vector<int> box;
      for (int r = 0; r < 2; ++r) {
        for (int c = 0; c < 2; ++c) {
          box.push_back(cell(2 * br + r, 2 * bc + c));
        }
      }
      sudoku.AddConstraint(box, all_diff);
    }
  }

  // Clues (0-based digits):  1 . . .   /  . . 3 .  /  . 2 . .  /  . . . 0
  sudoku.AddConstraint({cell(0, 0)}, {{1}});
  sudoku.AddConstraint({cell(1, 2)}, {{3}});
  sudoku.AddConstraint({cell(2, 1)}, {{2}});
  sudoku.AddConstraint({cell(3, 3)}, {{0}});

  BacktrackingSolver solver(sudoku);
  auto solution = solver.Solve();
  if (!solution.has_value()) {
    std::printf("no solution\n");
    return 1;
  }
  std::printf("Solved (%lld nodes, %lld prunings):\n",
              static_cast<long long>(solver.stats().nodes),
              static_cast<long long>(solver.stats().prunings));
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      std::printf("%d ", (*solution)[cell(r, c)] + 1);
    }
    std::printf("\n");
  }
  std::printf("Distinct solutions with these clues: %lld\n",
              static_cast<long long>(solver.CountSolutions(100)));
  return 0;
}
