// Waltz line labeling — the machine-vision problem that opens most CSP
// surveys (the paper's Section 1 lists machine vision first). Each line
// of a drawing of a trihedral scene is labeled convex (+), concave (-),
// or occluding (> / <); junction catalogs constrain which label
// combinations can meet at L-, W- (arrow), and Y- (fork) junctions.
// Labeling a cube drawn in general position is a CSP over the lines;
// arc consistency plus a tiny search labels it, and the solution count
// shows how strongly the junction catalog prunes.

#include <cstdio>

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "consistency/arc_consistency.h"
#include "csp/instance.h"
#include "csp/solver.h"

namespace {

// Line labels, viewed from the line's canonical direction.
enum Label { kPlus = 0, kMinus = 1, kRight = 2, kLeft = 3 };

const char* kLabelNames[] = {"+", "-", ">", "<"};

}  // namespace

int main() {
  using namespace cspdb;

  // The standard cube drawing: outer hexagon 0..5, center vertex 6.
  // Lines (variables), each with a fixed direction (from, to):
  //   0: 0-1   1: 1-2   2: 2-3   3: 3-4   4: 4-5   5: 5-0   (silhouette)
  //   6: 1-6   7: 3-6   8: 5-6                               (internal)
  const int kLines = 9;
  CspInstance csp(kLines, 4);
  const char* names[] = {"01", "12", "23", "34", "45", "50",
                         "16", "36", "56"};
  for (int i = 0; i < kLines; ++i) csp.SetVariableName(i, names[i]);
  for (int d = 0; d < 4; ++d) csp.SetValueName(d, kLabelNames[d]);

  // Junction catalogs (labels read with lines directed *away* from the
  // junction; flip(l) converts a label seen from the other end).
  auto flip = [](int l) {
    return l == kRight ? kLeft : (l == kLeft ? kRight : l);
  };

  // L-junctions admit: (>,<), (<,>), (+,>), (<,+), (-,<), (>,-).
  const std::vector<std::pair<int, int>> l_catalog = {
      {kRight, kLeft}, {kLeft, kRight}, {kPlus, kRight},
      {kLeft, kPlus},  {kMinus, kLeft}, {kRight, kMinus}};
  // Arrow (W) junctions, (left, shaft, right): (>,+,<), (-,+,-), (+,-,+).
  const std::vector<std::array<int, 3>> w_catalog = {
      {kRight, kPlus, kLeft},
      {kMinus, kPlus, kMinus},
      {kPlus, kMinus, kPlus}};
  // Fork (Y) junctions: (+,+,+), (-,-,-), and (<,>,-) in each rotation.
  std::vector<std::array<int, 3>> y_catalog = {
      {kPlus, kPlus, kPlus},
      {kMinus, kMinus, kMinus},
      {kLeft, kRight, kMinus},
      {kMinus, kLeft, kRight},
      {kRight, kMinus, kLeft}};

  // Outgoing-direction bookkeeping: line i runs names[i][0] -> names[i][1];
  // at its source the label reads as-is, at its target flipped.
  auto at = [&](int line, int vertex) {
    return names[line][0] - '0' == vertex;
  };
  auto oriented = [&](int line, int vertex, int label) {
    return at(line, vertex) ? label : flip(label);
  };

  // The cube's junctions: 0,2,4 are L; 1,3,5 are arrows (silhouette
  // corner with an internal edge as shaft... in this drawing the shaft
  // is the internal line); 6 is the central fork.
  struct ArrowJunction {
    int vertex, left, shaft, right;
  };
  const std::vector<std::array<int, 3>> l_junctions = {
      {0, 5, 0}, {2, 1, 2}, {4, 3, 4}};  // (vertex, line_a, line_b)
  const std::vector<ArrowJunction> arrows = {
      {1, 0, 6, 1}, {3, 2, 7, 3}, {5, 4, 8, 5}};

  // Encode L junctions.
  for (const auto& [v, la, lb] : l_junctions) {
    std::vector<Tuple> allowed;
    for (const auto& [x, y] : l_catalog) {
      // x is the label of la leaving v; store per-line canonical labels.
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          if (oriented(la, v, a) == x && oriented(lb, v, b) == y) {
            allowed.push_back({a, b});
          }
        }
      }
    }
    csp.AddConstraint({la, lb}, allowed);
  }
  // Encode arrow junctions.
  for (const ArrowJunction& j : arrows) {
    std::vector<Tuple> allowed;
    for (const auto& cat : w_catalog) {
      for (int a = 0; a < 4; ++a) {
        for (int s = 0; s < 4; ++s) {
          for (int b = 0; b < 4; ++b) {
            if (oriented(j.left, j.vertex, a) == cat[0] &&
                oriented(j.shaft, j.vertex, s) == cat[1] &&
                oriented(j.right, j.vertex, b) == cat[2]) {
              allowed.push_back({a, s, b});
            }
          }
        }
      }
    }
    csp.AddConstraint({j.left, j.shaft, j.right}, allowed);
  }
  // Encode the central fork over internal lines 6,7,8 (all meet at 6).
  {
    std::vector<Tuple> allowed;
    for (const auto& cat : y_catalog) {
      for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
          for (int c = 0; c < 4; ++c) {
            if (oriented(6, 6, a) == cat[0] &&
                oriented(7, 6, b) == cat[1] &&
                oriented(8, 6, c) == cat[2]) {
              allowed.push_back({a, b, c});
            }
          }
        }
      }
    }
    csp.AddConstraint({6, 7, 8}, allowed);
  }

  AcResult ac = EnforceGac(csp);
  std::printf("Arc consistency: %s, %lld prunings\n",
              ac.consistent ? "consistent" : "wipeout",
              static_cast<long long>(ac.prunings));

  BacktrackingSolver solver(csp);
  auto labeling = solver.Solve();
  if (!labeling.has_value()) {
    std::printf("No consistent labeling (not a trihedral drawing?)\n");
    return 1;
  }
  std::printf("A consistent labeling (%lld search nodes):\n",
              static_cast<long long>(solver.stats().nodes));
  for (int i = 0; i < kLines; ++i) {
    std::printf("  line %s : %s\n", names[i],
                kLabelNames[(*labeling)[i]]);
  }
  std::printf("Total consistent labelings of the drawing: %lld\n",
              static_cast<long long>(solver.CountSolutions()));
  return 0;
}
